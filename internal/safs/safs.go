// Package safs is a user-space "SSD array filesystem" in the spirit of SAFS
// (Zheng et al., SC'13), the storage substrate FlashR stores matrices on.
//
// The real SAFS stripes a file over an array of SSDs, issues asynchronous
// direct I/O to bypass the page cache, and merges sequential writes from
// many threads to sustain device throughput. This package reproduces that
// architecture at laptop scale:
//
//   - a filesystem (FS) manages N "drives", each a directory on the host;
//   - a File is striped over the drives in fixed-size stripe blocks mapped
//     round-robin (the default hash) so that reading even a column subset of
//     a matrix touches every drive, as §3.2.1 of the paper requires;
//   - every drive has a token-bucket bandwidth model so the aggregate I/O
//     throughput is a hard, configurable ceiling an order of magnitude below
//     memory bandwidth — this is what makes the in-memory vs external-memory
//     experiments (Fig. 9) meaningful on hardware without a 24-SSD array;
//   - reads and writes can be issued asynchronously to a pool of per-drive
//     I/O goroutines, which is how the engine overlaps I/O with compute.
//
// Direct I/O (O_DIRECT) is not portable and the host page cache cannot be
// bypassed from pure Go; the token bucket dominates timing instead, which
// preserves the behaviour the engine depends on (a fixed bandwidth budget).
package safs

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// crcTable is the CRC32C (Castagnoli) table used for per-stripe checksums —
// the polynomial real storage stacks (iSCSI, ext4, Btrfs) use, with hardware
// support on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// DefaultStripeBytes is the stripe-block size. The paper dispatches multiple
// contiguous I/O partitions per thread to match the SAFS block size; our
// engine does the same against this value.
const DefaultStripeBytes = 1 << 20 // 1 MiB

// Striping selects how stripe blocks map to drives.
type Striping int8

const (
	// StripeHash spreads stripes with a multiplicative hash — the paper's
	// default ("we use a hash function to map data to fully utilize the
	// bandwidth of all SSDs even if we access only a subset of columns").
	StripeHash Striping = iota
	// StripeRoundRobin places stripe i on drive i mod N.
	StripeRoundRobin
)

// Config configures a simulated SSD array.
type Config struct {
	// Drives are directories, one per simulated SSD. At least one.
	Drives []string
	// Striping selects the stripe→drive mapping (default StripeHash).
	Striping Striping
	// StripeBytes is the striping unit; 0 selects DefaultStripeBytes.
	StripeBytes int
	// ReadMBps and WriteMBps are the *aggregate* array bandwidths in
	// MiB/s, split evenly over drives. Zero disables throttling (the
	// drives are then as fast as the host filesystem).
	ReadMBps  float64
	WriteMBps float64
	// QueueDepth is the per-drive async request queue length (default 8).
	QueueDepth int
	// MaxRetries bounds how many times a failed stripe request is retried
	// with exponential backoff before it surfaces as a permanent
	// StripeError (0 selects DefaultMaxRetries, negative disables retry).
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt and capped at one second (0 selects DefaultRetryBackoff).
	RetryBackoff time.Duration
	// DisableVerify turns off CRC32C verification on reads (checksums are
	// still maintained on writes). The escape hatch for measuring the
	// verification overhead; leave off in normal operation.
	DisableVerify bool
}

// DefaultMaxRetries is the retry budget per stripe request.
const DefaultMaxRetries = 3

// DefaultRetryBackoff is the initial retry delay (doubles per attempt).
const DefaultRetryBackoff = 500 * time.Microsecond

// FS is a user-space filesystem over an array of simulated SSDs.
type FS struct {
	cfg     Config
	stripe  int
	drives  []*drive
	mu      sync.Mutex
	files   map[string]*fileMeta
	closed  bool
	reqWG   sync.WaitGroup
	statsMu sync.Mutex
	stats   Stats

	// passSeq issues array-unique pass identifiers (RegisterPass).
	passSeq atomic.Int64

	faults atomic.Pointer[Faults]

	// Integrity counters (atomic: bumped from per-drive workers).
	checksumFails   atomic.Int64
	retries         atomic.Int64
	recoveredReads  atomic.Int64
	recoveredWrites atomic.Int64
	verifyNs        atomic.Int64
}

// Stats aggregates I/O accounting for an FS.
type Stats struct {
	BytesRead    int64
	BytesWritten int64
	Reads        int64
	Writes       int64

	// ChecksumFailures counts stripe reads whose CRC32C did not match the
	// recorded value (each failed attempt counts once).
	ChecksumFailures int64
	// Retries counts retry attempts issued after transient failures.
	Retries int64
	// RecoveredReads / RecoveredWrites count requests that failed at least
	// once and then succeeded within the retry budget.
	RecoveredReads  int64
	RecoveredWrites int64
	// VerifyTime is cumulative time spent on integrity work: CRC32C
	// computation plus the read-modify cycles that maintain checksums for
	// partial-stripe writes.
	VerifyTime time.Duration
}

// fileMeta is the FS-side record of one striped file: its size plus the
// per-stripe CRC32C table (the integrity metadata a real SAFS keeps beside
// its mapping metadata).
type fileMeta struct {
	name string
	size int64

	// mu guards the checksum table. Per-drive workers update disjoint
	// stripes, but readers (Checksums, Verify) see the whole table.
	mu    sync.Mutex
	sums  []uint32
	known []bool
}

// nStripes returns the stripe count for this file at the given stripe size.
func (m *fileMeta) nStripes(stripe int) int64 {
	return (m.size + int64(stripe) - 1) / int64(stripe)
}

// setSum records stripe s's checksum, allocating the table on first use
// (files reopened from disk have no table until a write or restore).
func (m *fileMeta) setSum(s int64, crc uint32, stripe int) {
	m.mu.Lock()
	if m.sums == nil {
		n := m.nStripes(stripe)
		m.sums = make([]uint32, n)
		m.known = make([]bool, n)
	}
	if s < int64(len(m.sums)) {
		m.sums[s] = crc
		m.known[s] = true
	}
	m.mu.Unlock()
}

// sum returns stripe s's recorded checksum, if any.
func (m *fileMeta) sum(s int64) (uint32, bool) {
	if m == nil {
		return 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s >= int64(len(m.sums)) || !m.known[s] {
		return 0, false
	}
	return m.sums[s], true
}

// Open creates a filesystem over the configured drives, creating drive
// directories as needed.
func Open(cfg Config) (*FS, error) {
	if len(cfg.Drives) == 0 {
		return nil, errors.New("safs: no drives configured")
	}
	if cfg.StripeBytes <= 0 {
		cfg.StripeBytes = DefaultStripeBytes
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	fs := &FS{cfg: cfg, stripe: cfg.StripeBytes, files: make(map[string]*fileMeta)}
	perDriveRead := cfg.ReadMBps / float64(len(cfg.Drives))
	perDriveWrite := cfg.WriteMBps / float64(len(cfg.Drives))
	for i, dir := range cfg.Drives {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("safs: creating drive %d: %w", i, err)
		}
		d, err := newDrive(i, dir, perDriveRead, perDriveWrite, cfg.QueueDepth)
		if err != nil {
			return nil, err
		}
		fs.drives = append(fs.drives, d)
	}
	return fs, nil
}

// OpenTempDir builds an FS with n drives under a fresh directory inside dir
// (usually t.TempDir() in tests). Bandwidths follow cfg semantics.
func OpenTempDir(dir string, n int, readMBps, writeMBps float64) (*FS, error) {
	drives := make([]string, n)
	for i := range drives {
		drives[i] = filepath.Join(dir, fmt.Sprintf("ssd-%02d", i))
	}
	return Open(Config{Drives: drives, ReadMBps: readMBps, WriteMBps: writeMBps})
}

// StripeBytes returns the striping unit in bytes.
func (fs *FS) StripeBytes() int { return fs.stripe }

// NumDrives returns the number of simulated SSDs.
func (fs *FS) NumDrives() int { return len(fs.drives) }

// Stats returns a snapshot of cumulative I/O accounting.
func (fs *FS) Stats() Stats {
	fs.statsMu.Lock()
	st := fs.stats
	fs.statsMu.Unlock()
	st.ChecksumFailures = fs.checksumFails.Load()
	st.Retries = fs.retries.Load()
	st.RecoveredReads = fs.recoveredReads.Load()
	st.RecoveredWrites = fs.recoveredWrites.Load()
	st.VerifyTime = time.Duration(fs.verifyNs.Load())
	return st
}

// RegisterMetrics registers the array's counters and per-drive histograms
// with a metrics registry. The Stats snapshot is cached once per collection
// (OnCollect), so the counter families of one scrape are mutually consistent.
func (fs *FS) RegisterMetrics(reg *trace.Registry) {
	var snap Stats
	reg.OnCollect(func() { snap = fs.Stats() })
	for _, c := range []struct {
		name, help string
		read       func() float64
	}{
		{"flashr_safs_read_bytes_total", "Bytes read from the SSD array.", func() float64 { return float64(snap.BytesRead) }},
		{"flashr_safs_written_bytes_total", "Bytes written to the SSD array.", func() float64 { return float64(snap.BytesWritten) }},
		{"flashr_safs_reads_total", "Read requests completed by the SSD array.", func() float64 { return float64(snap.Reads) }},
		{"flashr_safs_writes_total", "Write requests completed by the SSD array.", func() float64 { return float64(snap.Writes) }},
		{"flashr_safs_checksum_failures_total", "Stripe reads whose CRC32C mismatched.", func() float64 { return float64(snap.ChecksumFailures) }},
		{"flashr_safs_retries_total", "Retry attempts after transient I/O failures.", func() float64 { return float64(snap.Retries) }},
		{"flashr_safs_recovered_reads_total", "Reads that failed then succeeded within the retry budget.", func() float64 { return float64(snap.RecoveredReads) }},
		{"flashr_safs_recovered_writes_total", "Writes that failed then succeeded within the retry budget.", func() float64 { return float64(snap.RecoveredWrites) }},
		{"flashr_safs_verify_seconds_total", "Cumulative CRC32C and read-modify-checksum time.", func() float64 { return snap.VerifyTime.Seconds() }},
	} {
		reg.CounterFunc(c.name, c.help, c.read)
	}
	for _, d := range fs.drives {
		dl := trace.Label{Key: "drive", Value: strconv.Itoa(d.id)}
		reg.AddHistogram("flashr_safs_request_latency_seconds",
			"SSD request service latency (queue pop to completion).", d.readLat, dl, trace.Label{Key: "op", Value: "read"})
		reg.AddHistogram("flashr_safs_request_latency_seconds",
			"SSD request service latency (queue pop to completion).", d.writeLat, dl, trace.Label{Key: "op", Value: "write"})
		reg.AddHistogram("flashr_safs_queue_depth",
			"Queued requests on the drive, sampled at each enqueue.", d.qdepth, dl)
	}
}

// InjectFaults installs a fault-injection profile on the array (nil clears
// it). Takes effect on the next piece attempt; safe to call while I/O is in
// flight.
func (fs *FS) InjectFaults(f *Faults) { fs.faults.Store(f) }

// Close shuts down the drive workers. Outstanding async requests complete
// first. Files remain on disk.
func (fs *FS) Close() error {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return nil
	}
	fs.closed = true
	fs.mu.Unlock()
	// All submitted requests have registered with reqWG before this point
	// (submit checks closed under fs.mu), so waiting here guarantees every
	// queued piece is drained before the workers stop.
	fs.reqWG.Wait()
	var first error
	for _, d := range fs.drives {
		d.shutdown()
		d.wg.Wait()
		if err := d.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Create makes (or truncates) a striped file of the given size in bytes.
func (fs *FS) Create(name string, size int64) (*File, error) {
	if size < 0 {
		return nil, fmt.Errorf("safs: negative size %d for %q", size, name)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, errors.New("safs: filesystem closed")
	}
	meta := &fileMeta{name: name, size: size}
	n := meta.nStripes(fs.stripe)
	meta.sums = make([]uint32, n)
	meta.known = make([]bool, n)
	f := &File{fs: fs, name: name, size: size, meta: meta}
	for _, d := range fs.drives {
		if err := d.createSegment(name, f.segmentSize(d.id)); err != nil {
			return nil, err
		}
	}
	fs.files[name] = meta
	return f, nil
}

// OpenFile opens an existing striped file.
func (fs *FS) OpenFile(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[name]
	if !ok {
		// Recover metadata from disk: sum of segment sizes.
		var total int64
		for _, d := range fs.drives {
			st, err := os.Stat(d.segPath(name))
			if err != nil {
				return nil, fmt.Errorf("safs: open %q: %w", name, err)
			}
			total += st.Size()
		}
		// Checksums are unknown for a file recovered from disk alone;
		// RestoreChecksums reinstates them from a metadata sidecar, and any
		// write re-establishes the written stripe's checksum.
		meta = &fileMeta{name: name, size: total}
		fs.files[name] = meta
	}
	return &File{fs: fs, name: name, size: meta.size, meta: meta}, nil
}

// Remove deletes a striped file from all drives.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, name)
	var first error
	for _, d := range fs.drives {
		if err := os.Remove(d.segPath(name)); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	return first
}

// List returns the names of files on the array, sorted: those created or
// opened by this FS instance plus any whose segments a previous session left
// on the drive directories. (A file shorter than one stripe occupies a
// single drive, so every drive is scanned and the union taken.)
func (fs *FS) List() []string {
	set := make(map[string]struct{})
	fs.mu.Lock()
	for n := range fs.files {
		set[n] = struct{}{}
	}
	fs.mu.Unlock()
	for _, d := range fs.drives {
		matches, _ := filepath.Glob(filepath.Join(d.dir, "*.seg"))
		for _, m := range matches {
			set[strings.TrimSuffix(filepath.Base(m), ".seg")] = struct{}{}
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// File is a file striped across the array's drives.
type File struct {
	fs   *FS
	name string
	size int64
	meta *fileMeta

	idxOnce sync.Once
	// ordinals[s] is the drive-local index of global stripe s (how many
	// earlier stripes share its drive).
	ordinals []int32
}

// Name returns the file's name within the FS namespace.
func (f *File) Name() string { return f.name }

// Size returns the logical file size in bytes.
func (f *File) Size() int64 { return f.size }

// Checksums returns a copy of the file's per-stripe CRC32C table and whether
// every stripe has a recorded checksum. Complete tables are persisted in
// matrix metadata sidecars and reinstated with RestoreChecksums after a
// reopen.
func (f *File) Checksums() ([]uint32, bool) {
	f.meta.mu.Lock()
	defer f.meta.mu.Unlock()
	if f.meta.sums == nil {
		return nil, false
	}
	sums := make([]uint32, len(f.meta.sums))
	copy(sums, f.meta.sums)
	complete := true
	for _, k := range f.meta.known {
		if !k {
			complete = false
			break
		}
	}
	return sums, complete
}

// RestoreChecksums installs a per-stripe CRC32C table recorded by a previous
// session (from a metadata sidecar). Subsequent reads verify against it.
func (f *File) RestoreChecksums(sums []uint32) error {
	want := f.meta.nStripes(f.fs.stripe)
	if int64(len(sums)) != want {
		return fmt.Errorf("safs: %q: restoring %d stripe checksums, file has %d stripes",
			f.name, len(sums), want)
	}
	f.meta.mu.Lock()
	f.meta.sums = make([]uint32, len(sums))
	copy(f.meta.sums, sums)
	f.meta.known = make([]bool, len(sums))
	for i := range f.meta.known {
		f.meta.known[i] = true
	}
	f.meta.mu.Unlock()
	return nil
}

// VerifyReport summarizes an integrity scan of one striped file.
type VerifyReport struct {
	File     string
	Stripes  int64 // stripes in the file
	Verified int64 // stripes checked against a recorded checksum
	Skipped  int64 // stripes with no recorded checksum
	Corrupt  []CorruptStripe
}

// CorruptStripe identifies one stripe whose on-disk bytes do not match its
// recorded CRC32C — including which drive holds it, so an operator knows
// which device is failing.
type CorruptStripe struct {
	Stripe int64
	Drive  int
	Want   uint32
	Got    uint32
}

// Verify scans every stripe of the file against the recorded checksum table.
// Segment bytes are read directly — no token bucket, no retries — because a
// scrub is a maintenance operation, off the simulated bandwidth budget.
func (f *File) Verify() (VerifyReport, error) {
	f.buildIndex()
	rep := VerifyReport{File: f.name}
	stripe := int64(f.fs.stripe)
	sc := make([]byte, f.fs.stripe)
	for s := int64(0); s*stripe < f.size; s++ {
		rep.Stripes++
		want, known := f.meta.sum(s)
		if !known {
			rep.Skipped++
			continue
		}
		n := stripe
		if rem := f.size - s*stripe; rem < n {
			n = rem
		}
		id := f.fs.driveOfStripe(s)
		h, err := f.fs.drives[id].handle(f.name)
		if err != nil {
			return rep, err
		}
		if _, err := h.ReadAt(sc[:n], int64(f.ordinals[s])*stripe); err != nil {
			return rep, fmt.Errorf("safs: verify %q stripe %d on drive %d: %w", f.name, s, id, err)
		}
		rep.Verified++
		if got := crc32.Checksum(sc[:n], crcTable); got != want {
			rep.Corrupt = append(rep.Corrupt, CorruptStripe{Stripe: s, Drive: id, Want: want, Got: got})
		}
	}
	return rep, nil
}

// Corrupt flips one bit of the given stripe directly in its drive's segment
// file — the test/chaos hook for persistent on-media corruption (a decayed
// cell or torn write on a real device). byteOff is relative to the stripe
// start.
func (f *File) Corrupt(stripe int64, byteOff int) error {
	f.buildIndex()
	if stripe < 0 || stripe >= int64(len(f.ordinals)) {
		return fmt.Errorf("safs: corrupt %q: stripe %d out of range", f.name, stripe)
	}
	sLen := int64(f.fs.stripe)
	if rem := f.size - stripe*sLen; rem < sLen {
		sLen = rem
	}
	if byteOff < 0 || int64(byteOff) >= sLen {
		return fmt.Errorf("safs: corrupt %q stripe %d: offset %d out of range", f.name, stripe, byteOff)
	}
	id := f.fs.driveOfStripe(stripe)
	h, err := f.fs.drives[id].handle(f.name)
	if err != nil {
		return err
	}
	off := int64(f.ordinals[stripe])*int64(f.fs.stripe) + int64(byteOff)
	var b [1]byte
	if _, err := h.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 0x80
	_, err = h.WriteAt(b[:], off)
	return err
}

// buildIndex computes each stripe's drive-local ordinal once per file.
func (f *File) buildIndex() {
	f.idxOnce.Do(func() {
		stripe := int64(f.fs.stripe)
		nStripes := (f.size + stripe - 1) / stripe
		f.ordinals = make([]int32, nStripes)
		counts := make([]int32, len(f.fs.drives))
		for s := int64(0); s < nStripes; s++ {
			d := f.fs.driveOfStripe(s)
			f.ordinals[s] = counts[d]
			counts[d]++
		}
	})
}

// segmentSize computes how many bytes of this file live on drive id.
func (f *File) segmentSize(id int) int64 {
	stripe := int64(f.fs.stripe)
	var seg, off int64
	for s := int64(0); off < f.size; s++ {
		take := stripe
		if f.size-off < take {
			take = f.size - off
		}
		if f.fs.driveOfStripe(s) == id {
			seg += take
		}
		off += take
	}
	return seg
}

// driveOfStripe maps a global stripe index to a drive, either by hash (the
// paper's default) or round-robin.
func (fs *FS) driveOfStripe(stripe int64) int {
	n := int64(len(fs.drives))
	if fs.cfg.Striping == StripeRoundRobin {
		return int(stripe % n)
	}
	z := uint64(stripe)*0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z ^= z >> 27
	return int(z % uint64(n))
}

// segOffset maps a global file offset to (drive, offset within the drive's
// segment file, bytes until the end of the stripe block).
func (f *File) segOffset(off int64) (driveID int, segOff int64, contig int64) {
	f.buildIndex()
	stripe := int64(f.fs.stripe)
	sIdx := off / stripe
	within := off - sIdx*stripe
	driveID = f.fs.driveOfStripe(sIdx)
	segOff = int64(f.ordinals[sIdx])*stripe + within
	contig = stripe - within
	return driveID, segOff, contig
}

// ReadAt reads len(p) bytes at offset off, spanning stripes as needed. It
// blocks until every per-drive piece completes; pieces on different drives
// proceed in parallel, each throttled by its drive's token bucket.
func (f *File) ReadAt(p []byte, off int64) error {
	return f.rw(p, off, false, nil)
}

// WriteAt writes len(p) bytes at offset off; blocking semantics mirror
// ReadAt.
func (f *File) WriteAt(p []byte, off int64) error {
	return f.rw(p, off, true, nil)
}

// ReadAtPass is ReadAt with the I/O attributed to (and fair-queued under)
// the given pass. A nil pass is equivalent to ReadAt.
func (f *File) ReadAtPass(p []byte, off int64, pass *Pass) error {
	return f.rw(p, off, false, pass)
}

// WriteAtPass is WriteAt with the I/O attributed to the given pass.
func (f *File) WriteAtPass(p []byte, off int64, pass *Pass) error {
	return f.rw(p, off, true, pass)
}

func (f *File) rw(p []byte, off int64, write bool, pass *Pass) error {
	done := make(chan Request, 1)
	f.submit(p, off, write, false, 0, done, pass)
	return (<-done).Err
}

func (fs *FS) account(n int64, write bool) {
	fs.statsMu.Lock()
	if write {
		fs.stats.BytesWritten += n
		fs.stats.Writes++
	} else {
		fs.stats.BytesRead += n
		fs.stats.Reads++
	}
	fs.statsMu.Unlock()
}

func verb(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// Request is a completed asynchronous I/O request.
type Request struct {
	Err error
	// Tag is the caller-supplied identifier.
	Tag int
}

// completion aggregates the per-stripe pieces of one file-level request and
// delivers a single Request on done when the last piece finishes.
type completion struct {
	fs    *FS
	n     atomic.Int32
	done  chan<- Request
	tag   int
	write bool
	pass  *Pass

	errMu sync.Mutex
	err   error
}

// finish records one piece's outcome; the last piece fires the completion.
func (c *completion) finish(err error, nbytes int) {
	if err != nil {
		c.errMu.Lock()
		if c.err == nil {
			c.err = err
		}
		c.errMu.Unlock()
	} else {
		c.fs.account(int64(nbytes), c.write)
		if c.pass != nil {
			if c.write {
				c.pass.bytesWritten.Add(int64(nbytes))
				c.pass.writes.Add(1)
			} else {
				c.pass.bytesRead.Add(int64(nbytes))
				c.pass.reads.Add(1)
			}
		}
	}
	if c.n.Add(-1) == 0 {
		c.errMu.Lock()
		first := c.err
		c.errMu.Unlock()
		c.done <- Request{Err: first, Tag: c.tag}
		c.fs.reqWG.Done()
	}
}

// pieces splits [off, off+len(p)) into per-stripe (drive, segment-offset)
// requests bound to the given completion. Each piece carries its stripe's
// integrity context (global index, segment offset of the stripe start, valid
// stripe length, checksum table) for the drive worker's verify/update path.
func (f *File) pieces(p []byte, off int64, write bool, comp *completion) []ioReq {
	var reqs []ioReq
	stripe := int64(f.fs.stripe)
	for len(p) > 0 {
		id, segOff, contig := f.segOffset(off)
		n := int64(len(p))
		if n > contig {
			n = contig
		}
		sIdx := off / stripe
		sLen := stripe
		if rem := f.size - sIdx*stripe; rem < sLen {
			sLen = rem
		}
		reqs = append(reqs, ioReq{
			drive: id, name: f.name, buf: p[:n], off: segOff, write: write, comp: comp, pass: comp.pass,
			stripe: sIdx, stripeOff: int64(f.ordinals[sIdx]) * stripe, stripeLen: int(sLen), meta: f.meta,
		})
		p = p[n:]
		off += n
	}
	return reqs
}

// submit validates a request, registers it with the FS, and queues its
// pieces to the per-drive workers. When async is set the (possibly blocking)
// queue sends happen on a helper goroutine so the caller returns
// immediately; errors still arrive on done.
func (f *File) submit(p []byte, off int64, write, async bool, tag int, done chan<- Request, pass *Pass) {
	if off < 0 || off+int64(len(p)) > f.size {
		done <- Request{Err: fmt.Errorf("safs: %s out of range [%d,%d) in %q of size %d",
			verb(write), off, off+int64(len(p)), f.name, f.size), Tag: tag}
		return
	}
	comp := &completion{fs: f.fs, done: done, tag: tag, write: write, pass: pass}
	if len(p) == 0 {
		// Zero-length request: complete immediately, nothing to queue.
		done <- Request{Tag: tag}
		return
	}
	reqs := f.pieces(p, off, write, comp)
	comp.n.Store(int32(len(reqs)))
	// Register under fs.mu so Close cannot observe reqWG empty between our
	// closed check and the Add.
	f.fs.mu.Lock()
	if f.fs.closed {
		f.fs.mu.Unlock()
		done <- Request{Err: errors.New("safs: filesystem closed"), Tag: tag}
		return
	}
	f.fs.reqWG.Add(1)
	f.fs.mu.Unlock()
	enqueue := func() {
		for _, r := range reqs {
			f.fs.drives[r.drive].enqueue(r)
		}
	}
	if async {
		go enqueue()
	} else {
		enqueue()
	}
}

// ReadAsync schedules an asynchronous read of len(p) bytes at off and
// delivers the completion on done. The buffer must not be touched until the
// completion arrives. Each stripe-spanning piece is queued to its drive's
// worker, so one request proceeds in parallel across drives.
func (f *File) ReadAsync(p []byte, off int64, tag int, done chan<- Request) {
	f.submit(p, off, false, true, tag, done, nil)
}

// WriteAsync schedules an asynchronous write; semantics mirror ReadAsync.
// The caller hands the buffer to the array until the completion arrives —
// the engine's write-behind queue relies on this ownership transfer.
func (f *File) WriteAsync(p []byte, off int64, tag int, done chan<- Request) {
	f.submit(p, off, true, true, tag, done, nil)
}

// ReadAsyncPass is ReadAsync with the I/O fair-queued under and attributed
// to the given pass; a nil pass uses the drive's default queue.
func (f *File) ReadAsyncPass(p []byte, off int64, tag int, done chan<- Request, pass *Pass) {
	f.submit(p, off, false, true, tag, done, pass)
}

// WriteAsyncPass is WriteAsync with pass attribution.
func (f *File) WriteAsyncPass(p []byte, off int64, tag int, done chan<- Request, pass *Pass) {
	f.submit(p, off, true, true, tag, done, pass)
}

// ioReq is one stripe-granular I/O request queued to a drive worker.
type ioReq struct {
	drive int
	name  string
	buf   []byte
	off   int64 // offset within the drive's segment file
	write bool
	comp  *completion
	// pass tags the request for fair queueing and attribution (nil = the
	// drive's default queue, pass id 0).
	pass *Pass

	// Integrity context: the global stripe this piece lives in, where that
	// stripe starts in the segment, how many of its bytes are valid in the
	// file, and the file's checksum table.
	stripe    int64
	stripeOff int64
	stripeLen int
	meta      *fileMeta
}

// passQueue is one pass's FIFO of pending requests on one drive, plus its
// deficit-round-robin state. Queues are materialized on a pass's first
// request and dropped when they drain, so the scheduler's round only ever
// walks passes with work pending (the "active list" of classic DRR).
type passQueue struct {
	reqs    []ioReq
	weight  int
	deficit int
}

// drrQuantum is the byte credit added per DRR round per unit of weight.
// A quarter stripe: small enough that a weight-1 pass interleaves within a
// stripe-heavy burst from a heavier pass, large enough that any single
// stripe piece (≤ 1 MiB) becomes affordable within a handful of rounds.
const drrQuantum = 256 << 10

// drive is one simulated SSD: a directory holding one segment file per
// striped file, token buckets modelling its read and write bandwidth, and
// per-pass request queues served by a dedicated I/O worker goroutine — the
// per-SSD I/O thread of the real SAFS. The worker picks the next request by
// weighted deficit round robin over the active passes, so concurrent
// materialization passes share the drive's bandwidth in proportion to their
// weights instead of first-come-first-served. Queue depth bounds the
// requests each pass buffers on a drive before its submitters feel
// backpressure (per-pass, so a backed-up pass cannot block another pass's
// submissions).
type drive struct {
	id      int
	dir     string
	readTB  *tokenBucket
	writeTB *tokenBucket
	wg      sync.WaitGroup

	// qmu guards the queue map and DRR state; qcond wakes the worker when
	// work arrives and submitters when depth frees up or a queue drains.
	qmu     sync.Mutex
	qcond   *sync.Cond
	queues  map[int64]*passQueue
	order   []int64 // active passes in arrival order; rrPos indexes it
	rrPos   int
	closing bool
	depth   int

	// scratch is the worker-private full-stripe buffer for checksum
	// verification and partial-stripe read-modify-checksum cycles.
	scratch []byte
	// frng rolls fault injection for this drive (worker-private).
	frng *rand.Rand

	// Always-on drive observability (adopted into a metrics registry via
	// FS.RegisterMetrics): request latency per direction, measured around
	// process() in the worker loop, and the drive's total queued request
	// count sampled at every enqueue. Histogram updates are a few atomic adds
	// per request — noise next to the simulated I/O itself.
	readLat  *trace.Histogram
	writeLat *trace.Histogram
	qdepth   *trace.Histogram
	queued   int // total requests queued across passes; guarded by qmu

	mu   sync.Mutex
	open map[string]*os.File
}

// latencyBuckets spans the simulated-SSD request range: tens of microseconds
// (unthrottled small pieces) through seconds (throttled + retry backoff).
func latencyBuckets() []float64 {
	return []float64{50e-6, 200e-6, 1e-3, 5e-3, 20e-3, 100e-3, 500e-3, 2.5}
}

// queueDepthBuckets covers 0 through well past the default per-pass depth.
func queueDepthBuckets() []float64 {
	return []float64{0, 1, 2, 4, 8, 16, 32, 64}
}

func newDrive(id int, dir string, readMBps, writeMBps float64, depth int) (*drive, error) {
	d := &drive{id: id, dir: dir, depth: depth, open: make(map[string]*os.File), queues: make(map[int64]*passQueue)}
	d.readLat = trace.NewHistogram(latencyBuckets()...)
	d.writeLat = trace.NewHistogram(latencyBuckets()...)
	d.qdepth = trace.NewHistogram(queueDepthBuckets()...)
	d.qcond = sync.NewCond(&d.qmu)
	if readMBps > 0 {
		d.readTB = newTokenBucket(readMBps * 1024 * 1024)
	}
	if writeMBps > 0 {
		d.writeTB = newTokenBucket(writeMBps * 1024 * 1024)
	}
	d.wg.Add(1)
	go d.serve()
	return d, nil
}

// passKey maps a request's pass to its queue key (nil pass shares queue 0).
func passKey(p *Pass) (int64, int) {
	if p == nil {
		return 0, 1
	}
	return p.id, p.weight
}

// enqueue adds one request to its pass's queue on this drive, blocking while
// that pass already has depth requests pending here (per-pass backpressure).
func (d *drive) enqueue(r ioReq) {
	key, weight := passKey(r.pass)
	d.qmu.Lock()
	for {
		// The queue may be created, drained, and deleted between waits, so
		// re-fetch it each iteration.
		q := d.queues[key]
		if q == nil || len(q.reqs) < d.depth {
			break
		}
		d.qcond.Wait()
	}
	q := d.queues[key]
	if q == nil {
		// A pass (re)joins the active list with zero deficit — rejoining
		// grants no credit for time spent idle, the classic DRR rule that
		// keeps the scheme fair to continuously-backlogged passes.
		q = &passQueue{weight: weight}
		d.queues[key] = q
		d.order = append(d.order, key)
	}
	q.reqs = append(q.reqs, r)
	d.queued++
	depthNow := d.queued
	d.qmu.Unlock()
	d.qdepth.Observe(float64(depthNow))
	d.qcond.Broadcast()
}

// serve is the drive's I/O worker. Requests within one pass stay FIFO
// (preserving the sequential, merge-friendly access pattern the engine's
// dispatch produces); across passes the worker interleaves by weighted DRR.
// Because one goroutine owns all I/O on this drive, per-stripe operations —
// including the read-modify-checksum cycle of partial-stripe writes — are
// naturally serialized.
func (d *drive) serve() {
	defer d.wg.Done()
	for {
		r, ok := d.nextReq()
		if !ok {
			return
		}
		t0 := time.Now()
		err := d.process(r)
		lat := time.Since(t0).Seconds()
		if r.write {
			d.writeLat.Observe(lat)
		} else {
			d.readLat.Observe(lat)
		}
		r.comp.finish(err, len(r.buf))
	}
}

// nextReq blocks until a request is schedulable or the drive is shutting
// down (shutdown happens only after the FS has drained all submissions, so
// closing implies the queues are empty).
func (d *drive) nextReq() (ioReq, bool) {
	d.qmu.Lock()
	defer d.qmu.Unlock()
	for {
		if r, ok := d.popDRR(); ok {
			// A slot freed in r's queue; wake any submitter blocked on depth.
			d.qcond.Broadcast()
			return r, true
		}
		if d.closing {
			return ioReq{}, false
		}
		d.qcond.Wait()
	}
}

// popDRR removes and returns the next request under weighted deficit round
// robin. Caller holds qmu. Returns false when every queue is empty.
func (d *drive) popDRR() (ioReq, bool) {
	// Drop drained queues from the active list first so deficit top-ups only
	// reach passes with work pending.
	live := d.order[:0]
	for _, key := range d.order {
		if q := d.queues[key]; q != nil && len(q.reqs) > 0 {
			live = append(live, key)
		} else {
			delete(d.queues, key)
		}
	}
	d.order = live
	if len(d.order) == 0 {
		d.rrPos = 0
		return ioReq{}, false
	}
	if d.rrPos >= len(d.order) {
		d.rrPos = 0
	}
	for {
		for i := 0; i < len(d.order); i++ {
			idx := (d.rrPos + i) % len(d.order)
			q := d.queues[d.order[idx]]
			cost := len(q.reqs[0].buf)
			if q.deficit < cost {
				continue
			}
			q.deficit -= cost
			r := q.reqs[0]
			q.reqs[0] = ioReq{} // release buffer/completion references
			q.reqs = q.reqs[1:]
			d.queued--
			if len(q.reqs) == 0 {
				// A pass leaves the active list with its surplus forfeited;
				// the queue itself is reaped on the next popDRR.
				q.deficit = 0
				d.rrPos = (idx + 1) % len(d.order)
			} else {
				d.rrPos = idx
			}
			return r, true
		}
		// No queue head is affordable: run one DRR round, crediting every
		// active pass in proportion to its weight.
		for _, key := range d.order {
			q := d.queues[key]
			q.deficit += drrQuantum * q.weight
		}
	}
}

// shutdown wakes the worker for exit. The FS calls this only after reqWG
// has drained, so the queues are empty by the time closing is observed.
func (d *drive) shutdown() {
	d.qmu.Lock()
	d.closing = true
	d.qmu.Unlock()
	d.qcond.Broadcast()
}

// process runs one piece with bounded retry and exponential backoff.
// Transient failures (injected EIOs, checksum mismatches from transfer
// corruption) are retried; a request that exhausts the budget surfaces as a
// StripeError naming this drive, the file, and the stripe.
func (d *drive) process(r ioReq) error {
	fs := r.comp.fs
	var err error
	for attempt := 0; attempt <= fs.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			fs.retries.Add(1)
			if r.pass != nil {
				r.pass.retries.Add(1)
			}
			backoff := fs.cfg.RetryBackoff << (attempt - 1)
			if backoff > time.Second {
				backoff = time.Second
			}
			time.Sleep(backoff)
		}
		if r.write {
			err = d.writePiece(fs, r)
		} else {
			err = d.readPiece(fs, r)
		}
		if err == nil {
			if attempt > 0 {
				if r.write {
					fs.recoveredWrites.Add(1)
					if r.pass != nil {
						r.pass.recoveredWrites.Add(1)
					}
				} else {
					fs.recoveredReads.Add(1)
					if r.pass != nil {
						r.pass.recoveredReads.Add(1)
					}
				}
			}
			return nil
		}
	}
	return &StripeError{
		Op: verb(r.write), Drive: d.id, File: r.name, Stripe: r.stripe,
		Attempts: fs.cfg.MaxRetries + 1, Err: err,
	}
}

// roll draws one fault-injection decision on this drive's seeded RNG.
func (d *drive) roll(seed int64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if d.frng == nil {
		d.frng = rand.New(rand.NewSource(seed + int64(d.id)*0x9E3779B9))
	}
	return d.frng.Float64() < rate
}

// scratchBuf returns the worker-private stripe buffer, grown to n bytes.
func (d *drive) scratchBuf(n int) []byte {
	if cap(d.scratch) < n {
		d.scratch = make([]byte, n)
	}
	return d.scratch[:n]
}

// readPiece performs one read attempt. When the stripe has a recorded
// checksum (and verification is enabled) the whole stripe is read and its
// CRC32C checked before the requested range is copied out; the stripe-sized
// read happens at device level — no token bucket — modeling the in-drive
// integrity check (T10-DIF style) real arrays do in hardware, which keeps
// verification off the simulated bandwidth budget.
func (d *drive) readPiece(fs *FS, r ioReq) error {
	flt := fs.faults.Load()
	if flt != nil {
		if flt.Latency > 0 {
			time.Sleep(flt.Latency)
		}
		if d.roll(flt.Seed, flt.ReadErrRate) {
			return fmt.Errorf("drive %d: %w", d.id, ErrInjected)
		}
	}
	if d.readTB != nil {
		d.readTB.take(len(r.buf))
	}
	f, err := d.handle(r.name)
	if err != nil {
		return err
	}
	want, known := r.meta.sum(r.stripe)
	if !known || fs.cfg.DisableVerify {
		if _, err := f.ReadAt(r.buf, r.off); err != nil {
			return err
		}
		// Without a checksum an injected flip silently corrupts the
		// caller's data — the failure mode verification exists to catch.
		if flt != nil && len(r.buf) > 0 && d.roll(flt.Seed, flt.FlipBitRate) {
			r.buf[0] ^= 0x01
		}
		return nil
	}
	sc := d.scratchBuf(r.stripeLen)
	if _, err := f.ReadAt(sc, r.stripeOff); err != nil {
		return err
	}
	if flt != nil && d.roll(flt.Seed, flt.FlipBitRate) {
		sc[int(r.stripe)%len(sc)] ^= 0x40
	}
	t0 := time.Now()
	got := crc32.Checksum(sc, crcTable)
	dt := time.Since(t0).Nanoseconds()
	fs.verifyNs.Add(dt)
	if r.pass != nil {
		r.pass.verifyNs.Add(dt)
	}
	if got != want {
		fs.checksumFails.Add(1)
		if r.pass != nil {
			r.pass.checksumFails.Add(1)
		}
		return &ChecksumError{Want: want, Got: got}
	}
	copy(r.buf, sc[r.off-r.stripeOff:])
	return nil
}

// writePiece performs one write attempt and updates the stripe's CRC32C. A
// full-stripe piece checksums straight from the buffer; a partial piece
// reads the stripe, patches the write into it, and checksums the result
// (safe: this worker serializes all I/O on this drive). An injected dropped
// write still records the intended checksum, so the next verified read of
// the stripe detects the torn write.
func (d *drive) writePiece(fs *FS, r ioReq) error {
	flt := fs.faults.Load()
	if flt != nil {
		if flt.Latency > 0 {
			time.Sleep(flt.Latency)
		}
		if d.roll(flt.Seed, flt.WriteErrRate) {
			return fmt.Errorf("drive %d: %w", d.id, ErrInjected)
		}
	}
	if d.writeTB != nil {
		d.writeTB.take(len(r.buf))
	}
	f, err := d.handle(r.name)
	if err != nil {
		return err
	}
	t0 := time.Now()
	var crc uint32
	if len(r.buf) == r.stripeLen && r.off == r.stripeOff {
		crc = crc32.Checksum(r.buf, crcTable)
	} else {
		sc := d.scratchBuf(r.stripeLen)
		if _, err := f.ReadAt(sc, r.stripeOff); err != nil {
			return err
		}
		copy(sc[r.off-r.stripeOff:], r.buf)
		crc = crc32.Checksum(sc, crcTable)
	}
	dt := time.Since(t0).Nanoseconds()
	fs.verifyNs.Add(dt)
	if r.pass != nil {
		r.pass.verifyNs.Add(dt)
	}
	if flt == nil || !d.roll(flt.Seed, flt.DropWriteRate) {
		if _, err := f.WriteAt(r.buf, r.off); err != nil {
			return err
		}
	}
	r.meta.setSum(r.stripe, crc, fs.stripe)
	return nil
}

func (d *drive) segPath(name string) string {
	return filepath.Join(d.dir, name+".seg")
}

func (d *drive) createSegment(name string, size int64) error {
	f, err := os.OpenFile(d.segPath(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("safs: drive %d: %w", d.id, err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return fmt.Errorf("safs: drive %d truncate: %w", d.id, err)
	}
	d.mu.Lock()
	if old, ok := d.open[name]; ok {
		old.Close()
	}
	d.open[name] = f
	d.mu.Unlock()
	return nil
}

func (d *drive) handle(name string) (*os.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.open[name]; ok {
		return f, nil
	}
	f, err := os.OpenFile(d.segPath(name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("safs: drive %d: %w", d.id, err)
	}
	d.open[name] = f
	return f, nil
}

func (d *drive) close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var first error
	for _, f := range d.open {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	d.open = map[string]*os.File{}
	return first
}

// tokenBucket throttles to rate bytes/second with a burst of ~50 ms worth of
// tokens, keeping the timing model smooth at partition granularity.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	tokens float64
	burst  float64
	last   time.Time
}

func newTokenBucket(rate float64) *tokenBucket {
	return &tokenBucket{rate: rate, burst: rate / 20, last: time.Now()}
}

func (tb *tokenBucket) take(n int) {
	// Debt model: charge the request immediately (tokens may go negative)
	// and sleep until the balance would be non-negative again. Unlike a
	// classic bounded bucket this never deadlocks on requests larger than
	// the burst, while still enforcing the sustained rate.
	tb.mu.Lock()
	now := time.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.tokens -= float64(n)
	deficit := -tb.tokens
	tb.mu.Unlock()
	if deficit > 0 {
		time.Sleep(time.Duration(deficit / tb.rate * float64(time.Second)))
	}
}
