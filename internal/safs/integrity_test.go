package safs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// newIntegrityFS builds an FS with a small stripe so integrity tests cover
// many stripes cheaply. mod tweaks the Config before Open.
func newIntegrityFS(t *testing.T, drives, stripeBytes int, mod func(*Config)) *FS {
	t.Helper()
	dirs := make([]string, drives)
	for i := range dirs {
		dirs[i] = filepath.Join(t.TempDir(), fmt.Sprintf("ssd-%02d", i))
	}
	cfg := Config{Drives: dirs, StripeBytes: stripeBytes}
	if mod != nil {
		mod(&cfg)
	}
	fs, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

func fillFile(t *testing.T, fs *FS, name string, size int64, seed int64) (*File, []byte) {
	t.Helper()
	f, err := fs.Create(name, size)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(data)
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	return f, data
}

// TestChecksumCleanPath: a fault-free write/read pass verifies every stripe
// and reports zero failures, retries, and recoveries.
func TestChecksumCleanPath(t *testing.T) {
	fs := newIntegrityFS(t, 3, 4096, nil)
	f, data := fillFile(t, fs, "m", 10*4096+777, 7)
	got := make([]byte, len(data))
	if err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	st := fs.Stats()
	if st.ChecksumFailures != 0 || st.Retries != 0 || st.RecoveredReads != 0 || st.RecoveredWrites != 0 {
		t.Fatalf("clean pass reported faults: %+v", st)
	}
	if st.VerifyTime <= 0 {
		t.Fatalf("expected nonzero verify time, got %v", st.VerifyTime)
	}
	sums, complete := f.Checksums()
	if !complete {
		t.Fatal("checksum table incomplete after full write")
	}
	if int64(len(sums)) != (f.Size()+4095)/4096 {
		t.Fatalf("checksum table has %d entries", len(sums))
	}
}

// TestCorruptionDetected: a bit flipped on media surfaces as a StripeError
// naming the drive, file, and stripe, wrapping the checksum mismatch.
func TestCorruptionDetected(t *testing.T) {
	fs := newIntegrityFS(t, 3, 4096, func(c *Config) {
		c.RetryBackoff = 1 // keep retries fast; they cannot heal on-media damage
	})
	f, data := fillFile(t, fs, "m", 8*4096, 11)
	const badStripe = 5
	if err := f.Corrupt(badStripe, 123); err != nil {
		t.Fatal(err)
	}
	// Reads not touching the corrupt stripe still succeed.
	ok := make([]byte, 4096)
	if err := f.ReadAt(ok, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ok, data[:4096]) {
		t.Fatal("healthy stripe mismatch")
	}
	// The corrupt stripe fails permanently with full identification.
	err := f.ReadAt(ok, badStripe*4096)
	var se *StripeError
	if !errors.As(err, &se) {
		t.Fatalf("want StripeError, got %v", err)
	}
	if se.File != "m" || se.Stripe != badStripe || se.Op != "read" {
		t.Fatalf("StripeError misidentifies the failure: %+v", se)
	}
	if se.Drive != fs.driveOfStripe(badStripe) {
		t.Fatalf("StripeError names drive %d, stripe lives on %d", se.Drive, fs.driveOfStripe(badStripe))
	}
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("want wrapped ChecksumError, got %v", err)
	}
	if st := fs.Stats(); st.ChecksumFailures == 0 {
		t.Fatal("checksum failure not counted")
	}
}

// TestTransientErrorsRecovered: injected EIOs at 10% on both paths are healed
// by retry/backoff and the read is bit-identical to the written data.
func TestTransientErrorsRecovered(t *testing.T) {
	fs := newIntegrityFS(t, 3, 4096, func(c *Config) {
		c.MaxRetries = 8
		c.RetryBackoff = 1
	})
	fs.InjectFaults(&Faults{Seed: 42, ReadErrRate: 0.1, WriteErrRate: 0.1})
	f, data := fillFile(t, fs, "m", 32*4096+100, 13)
	got := make([]byte, len(data))
	if err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("recovered read not bit-identical")
	}
	st := fs.Stats()
	if st.Retries == 0 {
		t.Fatal("expected retries under 10% injected error rate")
	}
	if st.RecoveredReads == 0 && st.RecoveredWrites == 0 {
		t.Fatal("expected recovered requests under injection")
	}
}

// TestFlipBitRecovered: transfer corruption (bit flips on the wire) is caught
// by the per-stripe CRC and healed by re-reading.
func TestFlipBitRecovered(t *testing.T) {
	fs := newIntegrityFS(t, 2, 4096, func(c *Config) {
		c.MaxRetries = 8
		c.RetryBackoff = 1
	})
	f, data := fillFile(t, fs, "m", 16*4096, 17)
	fs.InjectFaults(&Faults{Seed: 99, FlipBitRate: 0.3})
	got := make([]byte, len(data))
	if err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("flip-bit corruption leaked into a verified read")
	}
	st := fs.Stats()
	if st.ChecksumFailures == 0 || st.RecoveredReads == 0 {
		t.Fatalf("flips not detected/recovered: %+v", st)
	}
}

// TestFlipBitSilentWithoutVerify documents the failure mode checksums exist
// for: with verification disabled, transfer corruption reaches the caller.
func TestFlipBitSilentWithoutVerify(t *testing.T) {
	fs := newIntegrityFS(t, 2, 4096, func(c *Config) {
		c.DisableVerify = true
	})
	f, data := fillFile(t, fs, "m", 16*4096, 19)
	fs.InjectFaults(&Faults{Seed: 5, FlipBitRate: 1})
	got := make([]byte, len(data))
	if err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, data) {
		t.Fatal("expected silent corruption with verification disabled")
	}
	if st := fs.Stats(); st.ChecksumFailures != 0 {
		t.Fatal("disabled verification must not count failures")
	}
}

// TestDropWriteDetected: a torn write (drive acks, media keeps old bytes)
// is caught on the next read because the checksum records the intended data.
func TestDropWriteDetected(t *testing.T) {
	fs := newIntegrityFS(t, 2, 4096, func(c *Config) {
		c.RetryBackoff = 1
	})
	f, err := fs.Create("m", 4*4096)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4*4096)
	rand.New(rand.NewSource(23)).Read(data)
	fs.InjectFaults(&Faults{Seed: 1, DropWriteRate: 1})
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("dropped write must look successful, got %v", err)
	}
	fs.InjectFaults(nil)
	got := make([]byte, len(data))
	err = f.ReadAt(got, 0)
	var se *StripeError
	if !errors.As(err, &se) {
		t.Fatalf("want StripeError on torn write, got %v", err)
	}
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("want wrapped ChecksumError, got %v", err)
	}
}

// TestRestoreChecksums: a file reopened from disk alone has no checksums;
// restoring a sidecar table re-enables verification, and a table of the wrong
// shape is rejected.
func TestRestoreChecksums(t *testing.T) {
	dirs := make([]string, 2)
	root := t.TempDir()
	for i := range dirs {
		dirs[i] = filepath.Join(root, fmt.Sprintf("ssd-%02d", i))
	}
	cfg := Config{Drives: dirs, StripeBytes: 4096, RetryBackoff: 1}
	fs, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, data := fillFile(t, fs, "m", 6*4096+10, 29)
	sums, complete := f.Checksums()
	if !complete {
		t.Fatal("expected complete table")
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	f2, err := fs2.OpenFile("m")
	if err != nil {
		t.Fatal(err)
	}
	if _, complete := f2.Checksums(); complete {
		t.Fatal("reopened file should have no checksum table")
	}
	if err := f2.RestoreChecksums(sums[:2]); err == nil {
		t.Fatal("short table must be rejected")
	}
	if err := f2.RestoreChecksums(sums); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("restored-table read mismatch")
	}
	// The restored table really is enforced: corrupt a stripe and read it.
	if err := f2.Corrupt(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := f2.ReadAt(got[:4096], 4096); err == nil {
		t.Fatal("corruption after restore went undetected")
	}
}

// TestVerifyScan: the maintenance scrub reports exactly the corrupted stripe
// and the drive holding it.
func TestVerifyScan(t *testing.T) {
	fs := newIntegrityFS(t, 3, 4096, nil)
	f, _ := fillFile(t, fs, "m", 9*4096+512, 31)
	rep, err := f.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stripes != 10 || rep.Verified != 10 || rep.Skipped != 0 || len(rep.Corrupt) != 0 {
		t.Fatalf("clean scan: %+v", rep)
	}
	if err := f.Corrupt(4, 99); err != nil {
		t.Fatal(err)
	}
	rep, err = f.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 1 {
		t.Fatalf("want 1 corrupt stripe, got %+v", rep.Corrupt)
	}
	c := rep.Corrupt[0]
	if c.Stripe != 4 || c.Drive != fs.driveOfStripe(4) || c.Want == c.Got {
		t.Fatalf("corrupt stripe misreported: %+v", c)
	}
}

// TestRetryDisabled: negative MaxRetries makes the first failure permanent.
func TestRetryDisabled(t *testing.T) {
	fs := newIntegrityFS(t, 2, 4096, func(c *Config) {
		c.MaxRetries = -1
	})
	f, _ := fillFile(t, fs, "m", 4*4096, 37)
	fs.InjectFaults(&Faults{Seed: 3, ReadErrRate: 1})
	err := f.ReadAt(make([]byte, 4096), 0)
	var se *StripeError
	if !errors.As(err, &se) {
		t.Fatalf("want StripeError, got %v", err)
	}
	if se.Attempts != 1 {
		t.Fatalf("retry disabled but %d attempts reported", se.Attempts)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want wrapped ErrInjected, got %v", err)
	}
	if st := fs.Stats(); st.Retries != 0 {
		t.Fatal("retry disabled but retries counted")
	}
}

// FuzzStripeRoundTrip exercises the checksum write/read/verify cycle over
// arbitrary data, sizes, and offsets: every verified read must return the
// bytes written and a scrub must report a fully clean file.
func FuzzStripeRoundTrip(f *testing.F) {
	f.Add([]byte("hello, striped world"), uint16(100), uint8(3))
	f.Add([]byte{0}, uint16(0), uint8(1))
	f.Add(bytes.Repeat([]byte{0xAB}, 600), uint16(511), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, off16 uint16, nd uint8) {
		drives := int(nd)%4 + 1
		const stripe = 256
		dirs := make([]string, drives)
		root := t.TempDir()
		for i := range dirs {
			dirs[i] = filepath.Join(root, fmt.Sprintf("ssd-%02d", i))
		}
		fs, err := Open(Config{Drives: dirs, StripeBytes: stripe, RetryBackoff: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer fs.Close()
		off := int64(off16)
		size := off + int64(len(data)) + int64(off16%stripe)
		if size == 0 {
			size = 1
		}
		file, err := fs.Create("fz", size)
		if err != nil {
			t.Fatal(err)
		}
		// Fill fully (establishes every checksum), then overwrite a window at
		// an arbitrary offset (partial-stripe read-modify-checksum path).
		base := make([]byte, size)
		for i := range base {
			base[i] = byte(i * 131)
		}
		if err := file.WriteAt(base, 0); err != nil {
			t.Fatal(err)
		}
		if err := file.WriteAt(data, off); err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), base...)
		copy(want[off:], data)
		got := make([]byte, size)
		if err := file.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("verified read differs from written bytes")
		}
		rep, err := file.Verify()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Corrupt) != 0 || rep.Skipped != 0 {
			t.Fatalf("scrub of a clean file: %+v", rep)
		}
	})
}
