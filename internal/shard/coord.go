package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
)

// Config configures a sharded coordinator.
type Config struct {
	// Shards is the number of in-process workers to spawn when Addrs is
	// empty (0 = 2). Ignored when Addrs is set.
	Shards int
	// Addrs, when non-empty, are TCP worker addresses (one shard per
	// worker process, in row order).
	Addrs []string
	// RPCTimeout bounds each RPC attempt (0 = 30s).
	RPCTimeout time.Duration
	// Retries is how many times a transiently failed RPC is re-attempted
	// (0 = 3, negative = none). Every op is idempotent, so retrying after a
	// lost response re-executes safely.
	Retries int
	// RetryBackoff is the first retry's delay, doubling per attempt
	// (0 = 20ms).
	RetryBackoff time.Duration
	// RetryBackoffMax caps the doubling backoff (0 = 2s) — a restarting
	// worker process needs the retry budget spread over wall-clock time, not
	// exhausted in milliseconds.
	RetryBackoffMax time.Duration
	// CheckpointPath, when set, persists the pushed-leaf registry and the
	// keep-lineage table to this sidecar file after every pass, and resumes
	// from it (same session epoch, same pass sequence) at construction.
	CheckpointPath string
	// WrapTransport, when set, wraps each worker transport after
	// construction — the fault-injection seam for tests.
	WrapTransport func(worker int, t Transport) Transport
}

func (c Config) withDefaults() Config {
	if len(c.Addrs) > 0 {
		c.Shards = len(c.Addrs)
	} else if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 30 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 3
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 20 * time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 2 * time.Second
	}
	return c
}

// procNonce identifies this coordinator process in checkpoints: matrix IDs
// and content versions are process-local, so registry entries written by a
// different process cannot be re-bound to local matrices.
var procNonce = rand.Uint64() | 1

// shardRange is one worker's contiguous slice of the partition dimension.
type shardRange struct {
	part0  int
	nparts int
	row0   int64
	rows   int64
}

// splitParts assigns the matrix's I/O partitions to n shards in contiguous
// runs, spreading the remainder over the leading shards. The split depends
// only on (nrow, partRows, n), so leaf pushes from earlier passes stay valid.
func splitParts(nrow int64, partRows, n int) []shardRange {
	total := matrix.NumParts(nrow, partRows)
	q, r := total/n, total%n
	out := make([]shardRange, n)
	part := 0
	for i := range out {
		np := q
		if i < r {
			np++
		}
		row0 := int64(part) * int64(partRows)
		rows := int64(0)
		for p := 0; p < np; p++ {
			rows += int64(matrix.PartRowsOf(nrow, partRows, part+p))
		}
		out[i] = shardRange{part0: part, nparts: np, row0: row0, rows: rows}
		part += np
	}
	return out
}

type pushedLeaf struct {
	ver    uint64
	handle string
	// m is the local matrix behind the handle — the recovery path re-pushes
	// from it after a worker restart. Nil right after a checkpoint resume
	// until the first pass re-binds it by (id, version).
	m *core.Mat
}

// workerTotals accumulates one worker's lifetime pass stats on the
// coordinator.
type workerTotals struct {
	Passes        int64
	Parts         int64
	Chunks        int64
	BytesRead     int64
	BytesWritten  int64
	NodesExecuted int64
	Wall          time.Duration
}

func (t *workerTotals) add(s workerPassStats) {
	t.Passes += s.Passes
	t.Parts += s.Parts
	t.Chunks += s.Chunks
	t.BytesRead += s.BytesRead
	t.BytesWritten += s.BytesWritten
	t.NodesExecuted += s.NodesExecuted
	t.Wall += s.Wall
}

// passIO attributes wire traffic to one materialization pass. Fields are
// atomics because the fan-out phase calls from per-shard goroutines.
type passIO struct {
	sent, recv, retries atomic.Int64
	recoveries, replays atomic.Int64
}

// Coordinator is the RemoteExecutor that row-partitions every pass across
// shard workers: it encodes the post-rewrite DAG as a Program, pushes leaf
// data (once per content version), fans the program out, combines raw sink
// partials in fixed shard order, and attaches RemoteStores to tall targets so
// results stay worker-resident across passes.
type Coordinator struct {
	cfg      Config
	partRows int
	trs      []Transport
	workers  []*Worker // in-proc mode only (owned, closed with the coordinator)

	// epoch is the session identity every fenced RPC carries; boots holds
	// each worker's last-seen boot id (updated by the recovery re-hello).
	// recMu serializes recovery per worker so concurrent fenced RPCs repair
	// it once.
	epoch uint64
	boots []atomic.Uint64
	recMu []sync.Mutex

	passSeq atomic.Int64
	closed  atomic.Bool

	// pushMu serializes the encode-and-push phase across concurrent passes
	// so the pushed-leaf registry and the worker-resident data stay
	// coherent; execution fan-out overlaps freely. pushedMu guards only the
	// registry map itself — the recovery path snapshots it without blocking
	// on (or deadlocking against) an in-progress push phase.
	pushMu   sync.Mutex
	pushedMu sync.Mutex
	pushed   map[uint64]pushedLeaf
	// inherited are worker-resident handles restored from another process's
	// checkpoint: valid lineage inputs while their workers stay up, but not
	// re-pushable here.
	inherited map[string]bool

	lin lineage

	sent, recv, retries atomic.Int64
	aggRounds           atomic.Int64
	workerPasses        atomic.Int64
	recoveries          atomic.Int64
	replayedKeeps       atomic.Int64

	wmu    sync.Mutex
	wstats []workerTotals
}

// NewCoordinator builds a coordinator over TCP workers (cfg.Addrs) or over
// freshly spawned in-process workers (cfg.Shards copies of base, forced to
// in-memory stores). Either way every worker answers a hello validating the
// protocol version and the shared partition height before this returns.
func NewCoordinator(cfg Config, base core.Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	partRows := base.PartRows
	if partRows <= 0 {
		partRows = core.DefaultPartRows
	}
	c := &Coordinator{
		cfg:       cfg,
		partRows:  partRows,
		pushed:    make(map[uint64]pushedLeaf),
		inherited: make(map[string]bool),
		boots:     make([]atomic.Uint64, cfg.Shards),
		recMu:     make([]sync.Mutex, cfg.Shards),
		wstats:    make([]workerTotals, cfg.Shards),
	}
	if cfg.CheckpointPath != "" {
		ck, err := readCheckpoint(cfg.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if ck != nil && ck.shards == cfg.Shards && ck.partRows == partRows {
			c.epoch = ck.epoch
			c.passSeq.Store(ck.passSeq)
			if ck.procNonce == procNonce {
				// Same process: registry entries re-bind to local matrices
				// lazily, by (id, version), at the next encode.
				for _, e := range ck.registry {
					c.pushed[e.id] = pushedLeaf{ver: e.ver, handle: e.handle}
				}
			} else {
				// Another process's matrices: the handles stay usable as
				// worker-resident lineage inputs, nothing more.
				for _, e := range ck.registry {
					c.inherited[e.handle] = true
				}
			}
			c.lin.restore(ck.linSeq, ck.recs)
		}
	}
	if c.epoch == 0 {
		c.epoch = rand.Uint64() | 1
	}
	if len(cfg.Addrs) > 0 {
		for _, a := range cfg.Addrs {
			c.trs = append(c.trs, newTCPTransport(a, cfg.RPCTimeout))
		}
	} else {
		wcfg := base
		wcfg.PartRows = partRows
		wcfg.EM = false
		wcfg.FS = nil
		for i := 0; i < cfg.Shards; i++ {
			w, err := NewWorker(wcfg)
			if err != nil {
				c.Close()
				return nil, err
			}
			c.workers = append(c.workers, w)
			c.trs = append(c.trs, &loopback{w: w})
		}
	}
	if cfg.WrapTransport != nil {
		for i, t := range c.trs {
			c.trs[i] = cfg.WrapTransport(i, t)
		}
	}
	hello := encodeHelloReq(helloReq{Version: protocolVersion, PartRows: partRows, Epoch: c.epoch})
	for i := range c.trs {
		resp, err := c.call(context.Background(), i, opHello, hello, nil)
		if err != nil {
			c.Close()
			return nil, err
		}
		h, derr := decodeHelloResp(resp)
		if derr != nil {
			c.Close()
			return nil, derr
		}
		if h.Version != protocolVersion || h.PartRows != partRows {
			c.Close()
			return nil, fmt.Errorf("shard: worker %d hello mismatch: version %d part-rows %d, want %d/%d",
				i, h.Version, h.PartRows, protocolVersion, partRows)
		}
		c.boots[i].Store(h.Boot)
	}
	return c, nil
}

// Epoch returns the session epoch (tests, logs).
func (c *Coordinator) Epoch() uint64 { return c.epoch }

// Recoveries returns the lifetime count of worker recoveries (re-hello +
// re-push + lineage replay after a fencing rejection).
func (c *Coordinator) Recoveries() int64 { return c.recoveries.Load() }

// ReplayedKeeps returns the lifetime count of kept talls reconstructed by
// lineage replay.
func (c *Coordinator) ReplayedKeeps() int64 { return c.replayedKeeps.Load() }

// Shards returns the worker count.
func (c *Coordinator) Shards() int { return len(c.trs) }

// AggRounds returns the lifetime count of aggregation exchange rounds (one
// per remote pass that combined sink partials) — the quantity the cluster
// cost model predicts.
func (c *Coordinator) AggRounds() int64 { return c.aggRounds.Load() }

// Totals returns lifetime wire-traffic counters.
func (c *Coordinator) Totals() (sent, recv, retries int64) {
	return c.sent.Load(), c.recv.Load(), c.retries.Load()
}

// WorkerStats snapshots per-worker cumulative pass stats.
func (c *Coordinator) WorkerStats() []map[string]int64 {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	out := make([]map[string]int64, len(c.wstats))
	for i, t := range c.wstats {
		out[i] = map[string]int64{
			"passes": t.Passes, "parts": t.Parts, "chunks": t.Chunks,
			"read_bytes": t.BytesRead, "written_bytes": t.BytesWritten,
			"nodes": t.NodesExecuted, "wall_ns": int64(t.Wall),
		}
	}
	return out
}

// call is the retry/backoff RPC wrapper with recovery enabled: a fencing
// rejection triggers the worker recovery path, then the attempt repeats.
func (c *Coordinator) call(ctx context.Context, worker int, op uint8, body []byte, io *passIO) ([]byte, error) {
	return c.callRetry(ctx, worker, op, body, io, true)
}

// callRetry makes Retries+1 attempts against transient failures (doubling
// backoff capped at RetryBackoffMax, context-aware), with a typed wrap on
// final failure. Every non-hello request is prefixed per attempt with the
// current (epoch, boot) fence, so a request built before a recovery still
// lands with the post-recovery fence. An EpochError — the worker restarted,
// or adopted state lapsed — runs recoverWorker (when allowRecover; the
// recovery path's own RPCs must not recurse) and repeats the attempt without
// consuming retry budget. Wire bytes are attributed to io (per-pass) and the
// lifetime totals; request bytes count once per attempt — retransmits are
// real traffic.
func (c *Coordinator) callRetry(ctx context.Context, worker int, op uint8, body []byte, io *passIO, allowRecover bool) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var last error
	backoff := c.cfg.RetryBackoff
	recovered := 0
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if io != nil {
				io.retries.Add(1)
			}
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, &ShardError{Worker: worker, Op: op, Err: ctx.Err()}
			}
			backoff *= 2
			if backoff > c.cfg.RetryBackoffMax {
				backoff = c.cfg.RetryBackoffMax
			}
		}
		wire := body
		if op != opHello {
			wire = fenceBody(c.epoch, c.boots[worker].Load(), body)
		}
		sent := int64(len(wire) + 5)
		c.sent.Add(sent)
		if io != nil {
			io.sent.Add(sent)
		}
		actx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
		resp, err := c.trs[worker].Call(actx, op, wire)
		cancel()
		if err == nil {
			recv := int64(len(resp) + 5)
			c.recv.Add(recv)
			if io != nil {
				io.recv.Add(recv)
			}
			return resp, nil
		}
		last = err
		var ee *EpochError
		if errors.As(err, &ee) {
			if !allowRecover || recovered >= 2 {
				break
			}
			recovered++
			if rerr := c.recoverWorker(ctx, worker, io); rerr != nil {
				last = fmt.Errorf("%v (recovery: %w)", err, rerr)
				break
			}
			attempt-- // the recovered attempt is free
			continue
		}
		if !isTransient(err) {
			break
		}
		if ctx.Err() != nil {
			last = ctx.Err()
			break
		}
	}
	se := &ShardError{Worker: worker, Op: op, Err: last}
	var ee *EpochError
	if errors.As(last, &ee) {
		se.Reason = "epoch"
	}
	return nil, se
}

// recoverWorker repairs one worker after a fencing rejection: re-hello with
// the session epoch, and — if the worker restarted (new boot id) or lost its
// state — re-push its slice of every registry leaf and replay the lineage
// chain in pass order, threading the recorded entry carries, so its kept
// talls are reconstructed before the fenced request retries. Keeps replayed
// only as chain inputs (their stores are gone) are freed again at the end.
// Per-worker serialization via recMu means concurrent fenced RPCs repair the
// worker once; the loser of the race re-hellos, sees the already-updated
// boot with state present, and returns.
func (c *Coordinator) recoverWorker(ctx context.Context, wi int, io *passIO) error {
	c.recMu[wi].Lock()
	defer c.recMu[wi].Unlock()
	rctx := withRecovery(ctx)
	hello := encodeHelloReq(helloReq{Version: protocolVersion, PartRows: c.partRows, Epoch: c.epoch})
	resp, err := c.callRetry(rctx, wi, opHello, hello, io, false)
	if err != nil {
		return err
	}
	h, derr := decodeHelloResp(resp)
	if derr != nil {
		return derr
	}
	if h.Version != protocolVersion || h.PartRows != c.partRows {
		return fmt.Errorf("shard: worker %d recovery hello mismatch: version %d part-rows %d, want %d/%d",
			wi, h.Version, h.PartRows, protocolVersion, c.partRows)
	}
	if h.Boot == c.boots[wi].Load() && h.Kept > 0 {
		// Already repaired by a concurrent recovery — the fenced request just
		// raced it.
		return nil
	}
	c.boots[wi].Store(h.Boot)

	// Re-push this worker's slice of every re-bindable registry leaf.
	c.pushedMu.Lock()
	leaves := make([]pushedLeaf, 0, len(c.pushed))
	for _, pl := range c.pushed {
		if pl.m != nil {
			leaves = append(leaves, pl)
		}
	}
	avail := make(map[string]bool, len(c.pushed)+len(c.inherited))
	for _, pl := range c.pushed {
		avail[pl.handle] = true
	}
	for hdl := range c.inherited {
		avail[hdl] = true
	}
	c.pushedMu.Unlock()
	for _, pl := range leaves {
		sh := splitParts(pl.m.NRow(), c.partRows, len(c.trs))
		if err := c.pushLeafTo(rctx, pl.m, pl.handle, sh, wi, io); err != nil {
			return err
		}
	}

	// Replay the lineage chain. Inherited handles count as available while
	// planning, but a restarted worker no longer holds them — the replay exec
	// then fails with a typed lookup error, which is the honest outcome.
	plan, err := c.lin.replayPlan(wi, avail)
	if err != nil {
		return err
	}
	var replayed int64
	for _, step := range plan {
		sh := splitParts(step.nrow, c.partRows, len(c.trs))
		if sh[wi].rows == 0 {
			continue
		}
		req := execRequest{Owner: "shard-recover", Rows: sh[wi].rows, Prog: step.prog,
			Carries: step.carries, Keeps: step.keeps}
		rb, cerr := c.callRetry(rctx, wi, opExec, encodeExecReq(req), io, false)
		if cerr != nil {
			return cerr
		}
		if _, derr := decodeExecResp(rb); derr != nil {
			return derr
		}
		for _, k := range step.keeps {
			if k != "" {
				replayed++
			}
		}
	}
	// Free keeps that exist only as intermediate chain inputs: finalized
	// records whose stores are gone. In-flight records keep theirs — their
	// pass will attach stores or clean up.
	for _, step := range plan {
		if !step.final {
			continue
		}
		sh := splitParts(step.nrow, c.partRows, len(c.trs))
		if sh[wi].rows == 0 {
			continue
		}
		for j, k := range step.keeps {
			if k != "" && !step.live[j] {
				c.freeHandleOn(rctx, wi, k)
			}
		}
	}
	c.recoveries.Add(1)
	c.replayedKeeps.Add(replayed)
	if io != nil {
		io.recoveries.Add(1)
		io.replays.Add(replayed)
	}
	return nil
}

type pushJob struct {
	m      *core.Mat
	handle string
	old    string // stale handle to free first, "" if none
}

// RunDAG executes one materialization's residual DAG across the shards. See
// the package comment for the protocol; the invariants that matter:
//
//   - Sinks publish only after every shard succeeded — a failed pass surfaces
//     a typed ShardError and never a silent partial aggregate.
//   - Partials combine in fixed shard order and the folded publish transform
//     applies exactly once, so results are bit-identical to the single-engine
//     path for order-insensitive folds and reassociate only float sums.
//   - Passes with cum.col nodes and more than one active shard run the
//     shards sequentially, threading each shard's exit carry (its cum
//     output's last row, bitwise) into the next — cumulative folds stay
//     bit-identical too.
func (c *Coordinator) RunDAG(ctx context.Context, d *core.RemoteDAG, ms *core.MaterializeStats) error {
	if c.closed.Load() {
		return errors.New("shard: coordinator closed")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sh := splitParts(d.NRow, c.partRows, len(c.trs))
	pass := c.passSeq.Add(1)
	var io passIO

	prog, err := c.encodeAndPush(ctx, d, sh, &io)
	if err != nil {
		return err
	}

	// One handle per tall position: unified targets share a node index but
	// keep independent worker-side handles (the registry aliases them), so
	// each RemoteStore frees on its own schedule.
	keeps := make([]string, len(prog.Talls))
	for i := range prog.Talls {
		keeps[i] = fmt.Sprintf("t%d-%d", pass, i)
	}
	var active []int
	for i := range sh {
		if sh[i].rows > 0 {
			active = append(active, i)
		}
	}

	// Register the pass in the lineage table (sink-only passes produce no
	// worker-resident state, so there is nothing to replay for them), and
	// checkpoint whatever state the pass left behind on the way out.
	var rec *lineageRec
	if len(prog.Talls) > 0 {
		rec = c.lin.begin(len(c.trs), d.NRow, prog, keeps)
	}
	if c.cfg.CheckpointPath != "" {
		defer c.saveCheckpoint()
	}

	resps := make([]*execResponse, len(sh))
	if len(prog.Cums) > 0 && len(active) > 1 {
		// Sequential carry chain: shard s+1's cum.col folds continue from
		// shard s's exit accumulator. A mid-chain fault resumes at the failed
		// shard: earlier shards' execs are done, their entry carries recorded,
		// and the per-call retry resends the same request — with the same
		// carries — rather than restarting the chain.
		carries := map[int32][]float64(nil)
		for _, si := range active {
			c.lin.setCarry(rec, si, carries)
			req := execRequest{Owner: d.Owner, Rows: sh[si].rows, Prog: prog,
				Carries: carries, Keeps: keeps, CarryOut: prog.Cums}
			rb, cerr := c.call(ctx, si, opExec, encodeExecReq(req), &io)
			if cerr != nil {
				c.lin.abort(rec)
				c.cleanupKeeps(keeps, active)
				return cerr
			}
			r, derr := decodeExecResp(rb)
			if derr != nil {
				c.lin.abort(rec)
				c.cleanupKeeps(keeps, active)
				return derr
			}
			c.lin.markDone(rec, si)
			resps[si] = &r
			carries = r.Carries
		}
	} else {
		var wg sync.WaitGroup
		errs := make([]error, len(sh))
		for _, si := range active {
			si := si
			wg.Add(1)
			go func() {
				defer wg.Done()
				req := execRequest{Owner: d.Owner, Rows: sh[si].rows, Prog: prog, Keeps: keeps}
				rb, cerr := c.call(ctx, si, opExec, encodeExecReq(req), &io)
				if cerr != nil {
					errs[si] = cerr
					return
				}
				r, derr := decodeExecResp(rb)
				if derr != nil {
					errs[si] = derr
					return
				}
				c.lin.markDone(rec, si)
				resps[si] = &r
			}()
		}
		wg.Wait()
		for _, si := range active {
			if errs[si] != nil {
				c.lin.abort(rec)
				c.cleanupKeeps(keeps, active)
				return errs[si]
			}
		}
	}

	// Combine every sink before publishing any: publication is all-or-nothing.
	combined := make([]*core.SinkPartial, len(d.Sinks))
	for si := range d.Sinks {
		parts := make([]*core.SinkPartial, 0, len(active))
		for _, s := range active {
			if si >= len(resps[s].Partials) {
				c.lin.abort(rec)
				c.cleanupKeeps(keeps, active)
				return fmt.Errorf("shard: worker %d returned %d partials, want %d", s, len(resps[s].Partials), len(d.Sinks))
			}
			parts = append(parts, resps[s].Partials[si])
		}
		comb, cerr := d.Sinks[si].CombinePartials(parts)
		if cerr != nil {
			c.lin.abort(rec)
			c.cleanupKeeps(keeps, active)
			return cerr
		}
		combined[si] = comb
	}
	for si, s := range d.Sinks {
		s.PublishRaw(combined[si])
	}
	live := make([]bool, len(prog.Talls))
	for i := range prog.Talls {
		rs := &RemoteStore{c: c, handle: keeps[i], nrow: d.NRow,
			ncol: d.Talls[i].NCol(), partRows: c.partRows, sh: sh}
		if d.AttachTall(i, rs) {
			live[i] = true
		} else {
			// Lost the materialization race to a concurrent pass; drop the
			// worker-side copies.
			c.freeHandle(keeps[i], active)
		}
	}
	c.lin.finish(rec, live)

	var wpasses int64
	for _, s := range active {
		st := resps[s].Stats
		wpasses += st.Passes
		ms.ShardWorkerRead += st.BytesRead
		ms.ShardWorkerWritten += st.BytesWritten
	}
	c.wmu.Lock()
	for _, s := range active {
		c.wstats[s].add(resps[s].Stats)
	}
	c.wmu.Unlock()
	ms.ShardPasses += wpasses
	c.workerPasses.Add(wpasses)
	if len(d.Sinks) > 0 {
		ms.ShardAggRounds++
		c.aggRounds.Add(1)
	}
	ms.ShardBytesSent += io.sent.Load()
	ms.ShardBytesRecv += io.recv.Load()
	ms.ShardRetries += io.retries.Load()
	ms.ShardRecoveries += io.recoveries.Load()
	ms.ShardReplayedKeeps += io.replays.Load()
	return nil
}

// encodeAndPush serializes the DAG and ships every leaf the workers do not
// already hold. Runs under pushMu: the pushed-leaf registry records what is
// worker-resident per (matrix ID, content version), and concurrent passes
// must not observe half-pushed leaves.
func (c *Coordinator) encodeAndPush(ctx context.Context, d *core.RemoteDAG, sh []shardRange, io *passIO) (*core.Program, error) {
	c.pushMu.Lock()
	defer c.pushMu.Unlock()
	var jobs []pushJob
	prog, err := core.EncodeProgram(d, func(m *core.Mat) (string, error) {
		// A leaf whose data is already a RemoteStore of this coordinator is
		// worker-resident: reference it by its existing handle. This is what
		// keeps iterative algorithms' tall intermediates on the workers.
		if rs, ok := core.UnwrapStore(m.Store()).(*RemoteStore); ok && rs.c == c {
			return rs.handle, nil
		}
		id, ver := m.ID(), m.ContentVersion()
		c.pushedMu.Lock()
		defer c.pushedMu.Unlock()
		if pl, ok := c.pushed[id]; ok && pl.ver == ver {
			if pl.m == nil {
				// Checkpoint-resumed entry meeting its matrix again: re-bind
				// so the recovery path can re-push it.
				pl.m = m
				c.pushed[id] = pl
			}
			return pl.handle, nil
		}
		h := fmt.Sprintf("m%d-v%d", id, ver)
		job := pushJob{m: m, handle: h}
		if pl, ok := c.pushed[id]; ok {
			job.old = pl.handle
		}
		jobs = append(jobs, job)
		c.pushed[id] = pushedLeaf{ver: ver, handle: h, m: m}
		return h, nil
	})
	if err != nil {
		c.unpush(jobs)
		return nil, err
	}
	for _, j := range jobs {
		if j.old != "" {
			c.freeAll(j.old)
		}
		if perr := c.pushLeaf(ctx, j.m, j.handle, sh, io); perr != nil {
			c.unpush(jobs)
			return nil, perr
		}
	}
	return prog, nil
}

// unpush rolls the registry back after a failed encode-and-push so a later
// pass re-pushes from scratch; already-shipped partitions are freed
// best-effort.
func (c *Coordinator) unpush(jobs []pushJob) {
	c.pushedMu.Lock()
	for _, j := range jobs {
		delete(c.pushed, j.m.ID())
	}
	c.pushedMu.Unlock()
	for _, j := range jobs {
		c.freeAll(j.handle)
	}
}

// pushLeaf ships one matrix's partitions to their owning shards, renumbering
// global partition indexes to shard-local ones.
func (c *Coordinator) pushLeaf(ctx context.Context, m *core.Mat, handle string, sh []shardRange, io *passIO) error {
	for wi := range sh {
		if err := c.pushLeafTo(ctx, m, handle, sh, wi, io); err != nil {
			return err
		}
	}
	return nil
}

// pushLeafTo ships one worker's slice of a leaf (the recovery path's unit of
// work). Recovery contexts disable nested recovery in the calls beneath.
func (c *Coordinator) pushLeafTo(ctx context.Context, m *core.Mat, handle string, sh []shardRange, wi int, io *passIO) error {
	st := m.Store()
	if st == nil {
		return fmt.Errorf("shard: leaf %d is not materialized", m.ID())
	}
	buf := make([]float64, st.PartRows()*m.NCol())
	allowRecover := !isRecoveryCtx(ctx)
	for p := 0; p < sh[wi].nparts; p++ {
		g := sh[wi].part0 + p
		rows := matrix.PartRowsOf(m.NRow(), c.partRows, g)
		if err := st.ReadPart(g, buf[:rows*m.NCol()]); err != nil {
			return err
		}
		req := partReq{Handle: handle, NRow: sh[wi].rows, NCol: m.NCol(),
			DT: uint8(m.DType()), Part: p, Data: buf[:rows*m.NCol()]}
		if _, err := c.callRetry(ctx, wi, opPushPart, encodePartReq(req), io, allowRecover); err != nil {
			return err
		}
	}
	return nil
}

// cleanupKeeps best-effort frees this pass's keep handles on every active
// worker after a failure: some workers may hold freshly registered outputs
// no store will ever reference.
func (c *Coordinator) cleanupKeeps(keeps []string, active []int) {
	for _, h := range keeps {
		c.freeHandle(h, active)
	}
}

func (c *Coordinator) freeHandle(handle string, workers []int) {
	for _, wi := range workers {
		c.freeHandleOn(context.Background(), wi, handle)
	}
}

// freeHandleOn frees one handle on one worker, best-effort. A fencing
// rejection is NOT recovered here: recovery would pointlessly rebuild state
// on a worker that, having restarted, already forgot the handle.
func (c *Coordinator) freeHandleOn(ctx context.Context, wi int, handle string) {
	var w wbuf
	w.str(handle)
	c.callRetry(ctx, wi, opFreeMat, w.b, nil, false)
}

func (c *Coordinator) freeAll(handle string) {
	all := make([]int, len(c.trs))
	for i := range all {
		all[i] = i
	}
	c.freeHandle(handle, all)
}

// saveCheckpoint persists the session sidecar, best-effort: a failed write
// costs resumability, never the running pass.
func (c *Coordinator) saveCheckpoint() {
	if c.cfg.CheckpointPath == "" {
		return
	}
	ck := &checkpoint{
		procNonce: procNonce,
		epoch:     c.epoch,
		shards:    len(c.trs),
		partRows:  c.partRows,
		passSeq:   c.passSeq.Load(),
	}
	c.pushedMu.Lock()
	for id, pl := range c.pushed {
		ck.registry = append(ck.registry, checkpointEntry{id: id, ver: pl.ver, handle: pl.handle})
	}
	c.pushedMu.Unlock()
	ck.linSeq, ck.recs = c.lin.snapshot()
	writeCheckpoint(c.cfg.CheckpointPath, ck)
}

// CheckHandleBalance asserts (in-proc mode only) that every worker's resident
// handle set is exactly what the registry and the live lineage predict: the
// leak detector the chaos tests run after a workload. Only meaningful with no
// pass in flight.
func (c *Coordinator) CheckHandleBalance() error {
	n := len(c.trs)
	expected := make([]map[string]bool, n)
	for wi := range expected {
		expected[wi] = make(map[string]bool)
	}
	c.pushedMu.Lock()
	for _, pl := range c.pushed {
		if pl.m == nil {
			c.pushedMu.Unlock()
			return fmt.Errorf("shard: handle balance: registry entry %q has no local matrix", pl.handle)
		}
		sh := splitParts(pl.m.NRow(), c.partRows, n)
		for wi := range sh {
			if sh[wi].nparts > 0 {
				expected[wi][pl.handle] = true
			}
		}
	}
	c.pushedMu.Unlock()
	c.lin.mu.Lock()
	for _, r := range c.lin.recs {
		if !r.final {
			c.lin.mu.Unlock()
			return fmt.Errorf("shard: handle balance: pass %d still in flight", r.seq)
		}
		for j, h := range r.keeps {
			if h == "" || !r.live[j] {
				continue
			}
			for wi := range r.done {
				if r.done[wi] {
					expected[wi][h] = true
				}
			}
		}
	}
	c.lin.mu.Unlock()
	for wi, tr := range c.trs {
		lb := loopbackOf(tr)
		if lb == nil {
			return fmt.Errorf("shard: handle balance check needs in-process workers")
		}
		got := lb.worker().Handles()
		gotSet := make(map[string]bool, len(got))
		for _, h := range got {
			gotSet[h] = true
			if !expected[wi][h] {
				return fmt.Errorf("shard: worker %d holds unexpected handle %q (leak)", wi, h)
			}
		}
		for h := range expected[wi] {
			if !gotSet[h] {
				return fmt.Errorf("shard: worker %d is missing expected handle %q", wi, h)
			}
		}
	}
	return nil
}

// Close releases transports and (in-proc mode) the owned workers. RemoteStore
// reads fail afterwards, so sessions must flush result caches that hold
// shard-backed matrices before closing the coordinator.
func (c *Coordinator) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.saveCheckpoint()
	for _, t := range c.trs {
		t.Close()
	}
	for _, w := range c.workers {
		w.Close()
	}
	return nil
}

// RemoteStore is a matrix.Store whose partitions live sharded across the
// coordinator's workers. Attaching one to a tall target is how results stay
// worker-resident; any local read (printing, small-matrix conversion,
// result-cache copies) fetches partitions over the transport on demand.
type RemoteStore struct {
	c        *Coordinator
	handle   string
	nrow     int64
	ncol     int
	partRows int
	sh       []shardRange
	freed    atomic.Bool
}

// Handle returns the worker-side matrix handle (tests).
func (rs *RemoteStore) Handle() string { return rs.handle }

func (rs *RemoteStore) NRow() int64   { return rs.nrow }
func (rs *RemoteStore) NCol() int     { return rs.ncol }
func (rs *RemoteStore) PartRows() int { return rs.partRows }
func (rs *RemoteStore) NumParts() int { return matrix.NumParts(rs.nrow, rs.partRows) }
func (rs *RemoteStore) Kind() string  { return "shard" }

// locate maps a global partition index to (worker, shard-local partition).
func (rs *RemoteStore) locate(i int) (int, int, error) {
	if err := matrix.CheckPart(rs, i); err != nil {
		return 0, 0, err
	}
	for wi := range rs.sh {
		if i >= rs.sh[wi].part0 && i < rs.sh[wi].part0+rs.sh[wi].nparts {
			return wi, i - rs.sh[wi].part0, nil
		}
	}
	return 0, 0, fmt.Errorf("shard: partition %d not covered by any shard", i)
}

func (rs *RemoteStore) ReadPart(i int, dst []float64) error {
	wi, local, err := rs.locate(i)
	if err != nil {
		return err
	}
	rb, err := rs.c.call(context.Background(), wi, opFetchPart,
		encodeFetchReq(fetchReq{Handle: rs.handle, Part: local}), nil)
	if err != nil {
		return err
	}
	r := rbuf{b: rb}
	data := r.f64s()
	if r.err != nil {
		return r.err
	}
	rows := matrix.PartRowsOf(rs.nrow, rs.partRows, i)
	if len(data) != rows*rs.ncol {
		return fmt.Errorf("shard: fetched part %d has %d values, want %d", i, len(data), rows*rs.ncol)
	}
	copy(dst, data)
	return nil
}

func (rs *RemoteStore) ReadPartCols(i int, cols []int, dst []float64) error {
	rows := matrix.PartRowsOf(rs.nrow, rs.partRows, i)
	full := make([]float64, rows*rs.ncol)
	if err := rs.ReadPart(i, full); err != nil {
		return err
	}
	matrix.GatherCols(dst, full, rows, rs.ncol, cols)
	return nil
}

func (rs *RemoteStore) WritePart(i int, src []float64) error {
	wi, local, err := rs.locate(i)
	if err != nil {
		return err
	}
	rows := matrix.PartRowsOf(rs.nrow, rs.partRows, i)
	req := partReq{Handle: rs.handle, NRow: rs.sh[wi].rows, NCol: rs.ncol,
		DT: uint8(matrix.F64), Part: local, Data: src[:rows*rs.ncol]}
	_, err = rs.c.call(context.Background(), wi, opWritePart, encodePartReq(req), nil)
	return err
}

// Free releases the worker-side copies (best-effort; the coordinator may
// already be closed during teardown).
func (rs *RemoteStore) Free() error {
	if rs.freed.Swap(true) || rs.c.closed.Load() {
		return nil
	}
	rs.c.lin.markDead(rs.handle)
	var active []int
	for wi := range rs.sh {
		if rs.sh[wi].nparts > 0 {
			active = append(active, wi)
		}
	}
	rs.c.freeHandle(rs.handle, active)
	return nil
}
