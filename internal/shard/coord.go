package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
)

// Config configures a sharded coordinator.
type Config struct {
	// Shards is the number of in-process workers to spawn when Addrs is
	// empty (0 = 2). Ignored when Addrs is set.
	Shards int
	// Addrs, when non-empty, are TCP worker addresses (one shard per
	// worker process, in row order).
	Addrs []string
	// RPCTimeout bounds each RPC attempt (0 = 30s).
	RPCTimeout time.Duration
	// Retries is how many times a transiently failed RPC is re-attempted
	// (0 = 3, negative = none). Every op is idempotent, so retrying after a
	// lost response re-executes safely.
	Retries int
	// RetryBackoff is the first retry's delay, doubling per attempt
	// (0 = 20ms).
	RetryBackoff time.Duration
	// WrapTransport, when set, wraps each worker transport after
	// construction — the fault-injection seam for tests.
	WrapTransport func(worker int, t Transport) Transport
}

func (c Config) withDefaults() Config {
	if len(c.Addrs) > 0 {
		c.Shards = len(c.Addrs)
	} else if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 30 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 3
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 20 * time.Millisecond
	}
	return c
}

// shardRange is one worker's contiguous slice of the partition dimension.
type shardRange struct {
	part0  int
	nparts int
	row0   int64
	rows   int64
}

// splitParts assigns the matrix's I/O partitions to n shards in contiguous
// runs, spreading the remainder over the leading shards. The split depends
// only on (nrow, partRows, n), so leaf pushes from earlier passes stay valid.
func splitParts(nrow int64, partRows, n int) []shardRange {
	total := matrix.NumParts(nrow, partRows)
	q, r := total/n, total%n
	out := make([]shardRange, n)
	part := 0
	for i := range out {
		np := q
		if i < r {
			np++
		}
		row0 := int64(part) * int64(partRows)
		rows := int64(0)
		for p := 0; p < np; p++ {
			rows += int64(matrix.PartRowsOf(nrow, partRows, part+p))
		}
		out[i] = shardRange{part0: part, nparts: np, row0: row0, rows: rows}
		part += np
	}
	return out
}

type pushedLeaf struct {
	ver    uint64
	handle string
}

// workerTotals accumulates one worker's lifetime pass stats on the
// coordinator.
type workerTotals struct {
	Passes        int64
	Parts         int64
	Chunks        int64
	BytesRead     int64
	BytesWritten  int64
	NodesExecuted int64
	Wall          time.Duration
}

func (t *workerTotals) add(s workerPassStats) {
	t.Passes += s.Passes
	t.Parts += s.Parts
	t.Chunks += s.Chunks
	t.BytesRead += s.BytesRead
	t.BytesWritten += s.BytesWritten
	t.NodesExecuted += s.NodesExecuted
	t.Wall += s.Wall
}

// passIO attributes wire traffic to one materialization pass. Fields are
// atomics because the fan-out phase calls from per-shard goroutines.
type passIO struct {
	sent, recv, retries atomic.Int64
}

// Coordinator is the RemoteExecutor that row-partitions every pass across
// shard workers: it encodes the post-rewrite DAG as a Program, pushes leaf
// data (once per content version), fans the program out, combines raw sink
// partials in fixed shard order, and attaches RemoteStores to tall targets so
// results stay worker-resident across passes.
type Coordinator struct {
	cfg      Config
	partRows int
	trs      []Transport
	workers  []*Worker // in-proc mode only (owned, closed with the coordinator)

	passSeq atomic.Int64
	closed  atomic.Bool

	// pushMu serializes the encode-and-push phase across concurrent passes
	// so the pushed-leaf registry and the worker-resident data stay
	// coherent; execution fan-out overlaps freely.
	pushMu sync.Mutex
	pushed map[uint64]pushedLeaf

	sent, recv, retries atomic.Int64
	aggRounds           atomic.Int64
	workerPasses        atomic.Int64

	wmu    sync.Mutex
	wstats []workerTotals
}

// NewCoordinator builds a coordinator over TCP workers (cfg.Addrs) or over
// freshly spawned in-process workers (cfg.Shards copies of base, forced to
// in-memory stores). Either way every worker answers a hello validating the
// protocol version and the shared partition height before this returns.
func NewCoordinator(cfg Config, base core.Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	partRows := base.PartRows
	if partRows <= 0 {
		partRows = core.DefaultPartRows
	}
	c := &Coordinator{
		cfg:      cfg,
		partRows: partRows,
		pushed:   make(map[uint64]pushedLeaf),
		wstats:   make([]workerTotals, cfg.Shards),
	}
	if len(cfg.Addrs) > 0 {
		for _, a := range cfg.Addrs {
			c.trs = append(c.trs, newTCPTransport(a, cfg.RPCTimeout))
		}
	} else {
		wcfg := base
		wcfg.PartRows = partRows
		wcfg.EM = false
		wcfg.FS = nil
		for i := 0; i < cfg.Shards; i++ {
			w, err := NewWorker(wcfg)
			if err != nil {
				c.Close()
				return nil, err
			}
			c.workers = append(c.workers, w)
			c.trs = append(c.trs, &loopback{w: w})
		}
	}
	if cfg.WrapTransport != nil {
		for i, t := range c.trs {
			c.trs[i] = cfg.WrapTransport(i, t)
		}
	}
	hello := encodeHelloReq(helloReq{Version: protocolVersion, PartRows: partRows})
	for i := range c.trs {
		resp, err := c.call(context.Background(), i, opHello, hello, nil)
		if err != nil {
			c.Close()
			return nil, err
		}
		h, derr := decodeHelloResp(resp)
		if derr != nil {
			c.Close()
			return nil, derr
		}
		if h.Version != protocolVersion || h.PartRows != partRows {
			c.Close()
			return nil, fmt.Errorf("shard: worker %d hello mismatch: version %d part-rows %d, want %d/%d",
				i, h.Version, h.PartRows, protocolVersion, partRows)
		}
	}
	return c, nil
}

// Shards returns the worker count.
func (c *Coordinator) Shards() int { return len(c.trs) }

// AggRounds returns the lifetime count of aggregation exchange rounds (one
// per remote pass that combined sink partials) — the quantity the cluster
// cost model predicts.
func (c *Coordinator) AggRounds() int64 { return c.aggRounds.Load() }

// Totals returns lifetime wire-traffic counters.
func (c *Coordinator) Totals() (sent, recv, retries int64) {
	return c.sent.Load(), c.recv.Load(), c.retries.Load()
}

// WorkerStats snapshots per-worker cumulative pass stats.
func (c *Coordinator) WorkerStats() []map[string]int64 {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	out := make([]map[string]int64, len(c.wstats))
	for i, t := range c.wstats {
		out[i] = map[string]int64{
			"passes": t.Passes, "parts": t.Parts, "chunks": t.Chunks,
			"read_bytes": t.BytesRead, "written_bytes": t.BytesWritten,
			"nodes": t.NodesExecuted, "wall_ns": int64(t.Wall),
		}
	}
	return out
}

// call is the retry/backoff RPC wrapper: Retries+1 attempts against
// transient failures (doubling backoff, context-aware), typed wrap on final
// failure. Wire bytes are attributed to io (per-pass) and the lifetime
// totals; request bytes count once per attempt — retransmits are real
// traffic.
func (c *Coordinator) call(ctx context.Context, worker int, op uint8, body []byte, io *passIO) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var last error
	backoff := c.cfg.RetryBackoff
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if io != nil {
				io.retries.Add(1)
			}
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, &ShardError{Worker: worker, Op: op, Err: ctx.Err()}
			}
			backoff *= 2
		}
		sent := int64(len(body) + 5)
		c.sent.Add(sent)
		if io != nil {
			io.sent.Add(sent)
		}
		actx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
		resp, err := c.trs[worker].Call(actx, op, body)
		cancel()
		if err == nil {
			recv := int64(len(resp) + 5)
			c.recv.Add(recv)
			if io != nil {
				io.recv.Add(recv)
			}
			return resp, nil
		}
		last = err
		if !isTransient(err) {
			break
		}
		if ctx.Err() != nil {
			last = ctx.Err()
			break
		}
	}
	return nil, &ShardError{Worker: worker, Op: op, Err: last}
}

type pushJob struct {
	m      *core.Mat
	handle string
	old    string // stale handle to free first, "" if none
}

// RunDAG executes one materialization's residual DAG across the shards. See
// the package comment for the protocol; the invariants that matter:
//
//   - Sinks publish only after every shard succeeded — a failed pass surfaces
//     a typed ShardError and never a silent partial aggregate.
//   - Partials combine in fixed shard order and the folded publish transform
//     applies exactly once, so results are bit-identical to the single-engine
//     path for order-insensitive folds and reassociate only float sums.
//   - Passes with cum.col nodes and more than one active shard run the
//     shards sequentially, threading each shard's exit carry (its cum
//     output's last row, bitwise) into the next — cumulative folds stay
//     bit-identical too.
func (c *Coordinator) RunDAG(ctx context.Context, d *core.RemoteDAG, ms *core.MaterializeStats) error {
	if c.closed.Load() {
		return errors.New("shard: coordinator closed")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sh := splitParts(d.NRow, c.partRows, len(c.trs))
	pass := c.passSeq.Add(1)
	var io passIO

	prog, err := c.encodeAndPush(ctx, d, sh, &io)
	if err != nil {
		return err
	}

	// One handle per tall position: unified targets share a node index but
	// keep independent worker-side handles (the registry aliases them), so
	// each RemoteStore frees on its own schedule.
	keeps := make([]string, len(prog.Talls))
	for i := range prog.Talls {
		keeps[i] = fmt.Sprintf("t%d-%d", pass, i)
	}
	var active []int
	for i := range sh {
		if sh[i].rows > 0 {
			active = append(active, i)
		}
	}

	resps := make([]*execResponse, len(sh))
	if len(prog.Cums) > 0 && len(active) > 1 {
		// Sequential carry chain: shard s+1's cum.col folds continue from
		// shard s's exit accumulator.
		carries := map[int32][]float64(nil)
		for _, si := range active {
			req := execRequest{Owner: d.Owner, Rows: sh[si].rows, Prog: prog,
				Carries: carries, Keeps: keeps, CarryOut: prog.Cums}
			rb, cerr := c.call(ctx, si, opExec, encodeExecReq(req), &io)
			if cerr != nil {
				c.cleanupKeeps(keeps, active)
				return cerr
			}
			r, derr := decodeExecResp(rb)
			if derr != nil {
				c.cleanupKeeps(keeps, active)
				return derr
			}
			resps[si] = &r
			carries = r.Carries
		}
	} else {
		var wg sync.WaitGroup
		errs := make([]error, len(sh))
		for _, si := range active {
			si := si
			wg.Add(1)
			go func() {
				defer wg.Done()
				req := execRequest{Owner: d.Owner, Rows: sh[si].rows, Prog: prog, Keeps: keeps}
				rb, cerr := c.call(ctx, si, opExec, encodeExecReq(req), &io)
				if cerr != nil {
					errs[si] = cerr
					return
				}
				r, derr := decodeExecResp(rb)
				if derr != nil {
					errs[si] = derr
					return
				}
				resps[si] = &r
			}()
		}
		wg.Wait()
		for _, si := range active {
			if errs[si] != nil {
				c.cleanupKeeps(keeps, active)
				return errs[si]
			}
		}
	}

	// Combine every sink before publishing any: publication is all-or-nothing.
	combined := make([]*core.SinkPartial, len(d.Sinks))
	for si := range d.Sinks {
		parts := make([]*core.SinkPartial, 0, len(active))
		for _, s := range active {
			if si >= len(resps[s].Partials) {
				c.cleanupKeeps(keeps, active)
				return fmt.Errorf("shard: worker %d returned %d partials, want %d", s, len(resps[s].Partials), len(d.Sinks))
			}
			parts = append(parts, resps[s].Partials[si])
		}
		comb, cerr := d.Sinks[si].CombinePartials(parts)
		if cerr != nil {
			c.cleanupKeeps(keeps, active)
			return cerr
		}
		combined[si] = comb
	}
	for si, s := range d.Sinks {
		s.PublishRaw(combined[si])
	}
	for i := range prog.Talls {
		rs := &RemoteStore{c: c, handle: keeps[i], nrow: d.NRow,
			ncol: d.Talls[i].NCol(), partRows: c.partRows, sh: sh}
		if !d.AttachTall(i, rs) {
			// Lost the materialization race to a concurrent pass; drop the
			// worker-side copies.
			c.freeHandle(keeps[i], active)
		}
	}

	var wpasses int64
	for _, s := range active {
		st := resps[s].Stats
		wpasses += st.Passes
		ms.ShardWorkerRead += st.BytesRead
		ms.ShardWorkerWritten += st.BytesWritten
	}
	c.wmu.Lock()
	for _, s := range active {
		c.wstats[s].add(resps[s].Stats)
	}
	c.wmu.Unlock()
	ms.ShardPasses += wpasses
	c.workerPasses.Add(wpasses)
	if len(d.Sinks) > 0 {
		ms.ShardAggRounds++
		c.aggRounds.Add(1)
	}
	ms.ShardBytesSent += io.sent.Load()
	ms.ShardBytesRecv += io.recv.Load()
	ms.ShardRetries += io.retries.Load()
	return nil
}

// encodeAndPush serializes the DAG and ships every leaf the workers do not
// already hold. Runs under pushMu: the pushed-leaf registry records what is
// worker-resident per (matrix ID, content version), and concurrent passes
// must not observe half-pushed leaves.
func (c *Coordinator) encodeAndPush(ctx context.Context, d *core.RemoteDAG, sh []shardRange, io *passIO) (*core.Program, error) {
	c.pushMu.Lock()
	defer c.pushMu.Unlock()
	var jobs []pushJob
	prog, err := core.EncodeProgram(d, func(m *core.Mat) (string, error) {
		// A leaf whose data is already a RemoteStore of this coordinator is
		// worker-resident: reference it by its existing handle. This is what
		// keeps iterative algorithms' tall intermediates on the workers.
		if rs, ok := core.UnwrapStore(m.Store()).(*RemoteStore); ok && rs.c == c {
			return rs.handle, nil
		}
		id, ver := m.ID(), m.ContentVersion()
		if pl, ok := c.pushed[id]; ok && pl.ver == ver {
			return pl.handle, nil
		}
		h := fmt.Sprintf("m%d-v%d", id, ver)
		job := pushJob{m: m, handle: h}
		if pl, ok := c.pushed[id]; ok {
			job.old = pl.handle
		}
		jobs = append(jobs, job)
		c.pushed[id] = pushedLeaf{ver: ver, handle: h}
		return h, nil
	})
	if err != nil {
		c.unpush(jobs)
		return nil, err
	}
	for _, j := range jobs {
		if j.old != "" {
			c.freeAll(j.old)
		}
		if perr := c.pushLeaf(ctx, j.m, j.handle, sh, io); perr != nil {
			c.unpush(jobs)
			return nil, perr
		}
	}
	return prog, nil
}

// unpush rolls the registry back after a failed encode-and-push so a later
// pass re-pushes from scratch; already-shipped partitions are freed
// best-effort.
func (c *Coordinator) unpush(jobs []pushJob) {
	for _, j := range jobs {
		delete(c.pushed, j.m.ID())
		c.freeAll(j.handle)
	}
}

// pushLeaf ships one matrix's partitions to their owning shards, renumbering
// global partition indexes to shard-local ones.
func (c *Coordinator) pushLeaf(ctx context.Context, m *core.Mat, handle string, sh []shardRange, io *passIO) error {
	st := m.Store()
	if st == nil {
		return fmt.Errorf("shard: leaf %d is not materialized", m.ID())
	}
	buf := make([]float64, st.PartRows()*m.NCol())
	for wi := range sh {
		for p := 0; p < sh[wi].nparts; p++ {
			g := sh[wi].part0 + p
			rows := matrix.PartRowsOf(m.NRow(), c.partRows, g)
			if err := st.ReadPart(g, buf[:rows*m.NCol()]); err != nil {
				return err
			}
			req := partReq{Handle: handle, NRow: sh[wi].rows, NCol: m.NCol(),
				DT: uint8(m.DType()), Part: p, Data: buf[:rows*m.NCol()]}
			if _, err := c.call(ctx, wi, opPushPart, encodePartReq(req), io); err != nil {
				return err
			}
		}
	}
	return nil
}

// cleanupKeeps best-effort frees this pass's keep handles on every active
// worker after a failure: some workers may hold freshly registered outputs
// no store will ever reference.
func (c *Coordinator) cleanupKeeps(keeps []string, active []int) {
	for _, h := range keeps {
		c.freeHandle(h, active)
	}
}

func (c *Coordinator) freeHandle(handle string, workers []int) {
	var w wbuf
	w.str(handle)
	for _, wi := range workers {
		c.call(context.Background(), wi, opFreeMat, w.b, nil)
	}
}

func (c *Coordinator) freeAll(handle string) {
	all := make([]int, len(c.trs))
	for i := range all {
		all[i] = i
	}
	c.freeHandle(handle, all)
}

// Close releases transports and (in-proc mode) the owned workers. RemoteStore
// reads fail afterwards, so sessions must flush result caches that hold
// shard-backed matrices before closing the coordinator.
func (c *Coordinator) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, t := range c.trs {
		t.Close()
	}
	for _, w := range c.workers {
		w.Close()
	}
	return nil
}

// RemoteStore is a matrix.Store whose partitions live sharded across the
// coordinator's workers. Attaching one to a tall target is how results stay
// worker-resident; any local read (printing, small-matrix conversion,
// result-cache copies) fetches partitions over the transport on demand.
type RemoteStore struct {
	c        *Coordinator
	handle   string
	nrow     int64
	ncol     int
	partRows int
	sh       []shardRange
	freed    atomic.Bool
}

// Handle returns the worker-side matrix handle (tests).
func (rs *RemoteStore) Handle() string { return rs.handle }

func (rs *RemoteStore) NRow() int64   { return rs.nrow }
func (rs *RemoteStore) NCol() int     { return rs.ncol }
func (rs *RemoteStore) PartRows() int { return rs.partRows }
func (rs *RemoteStore) NumParts() int { return matrix.NumParts(rs.nrow, rs.partRows) }
func (rs *RemoteStore) Kind() string  { return "shard" }

// locate maps a global partition index to (worker, shard-local partition).
func (rs *RemoteStore) locate(i int) (int, int, error) {
	if err := matrix.CheckPart(rs, i); err != nil {
		return 0, 0, err
	}
	for wi := range rs.sh {
		if i >= rs.sh[wi].part0 && i < rs.sh[wi].part0+rs.sh[wi].nparts {
			return wi, i - rs.sh[wi].part0, nil
		}
	}
	return 0, 0, fmt.Errorf("shard: partition %d not covered by any shard", i)
}

func (rs *RemoteStore) ReadPart(i int, dst []float64) error {
	wi, local, err := rs.locate(i)
	if err != nil {
		return err
	}
	rb, err := rs.c.call(context.Background(), wi, opFetchPart,
		encodeFetchReq(fetchReq{Handle: rs.handle, Part: local}), nil)
	if err != nil {
		return err
	}
	r := rbuf{b: rb}
	data := r.f64s()
	if r.err != nil {
		return r.err
	}
	rows := matrix.PartRowsOf(rs.nrow, rs.partRows, i)
	if len(data) != rows*rs.ncol {
		return fmt.Errorf("shard: fetched part %d has %d values, want %d", i, len(data), rows*rs.ncol)
	}
	copy(dst, data)
	return nil
}

func (rs *RemoteStore) ReadPartCols(i int, cols []int, dst []float64) error {
	rows := matrix.PartRowsOf(rs.nrow, rs.partRows, i)
	full := make([]float64, rows*rs.ncol)
	if err := rs.ReadPart(i, full); err != nil {
		return err
	}
	matrix.GatherCols(dst, full, rows, rs.ncol, cols)
	return nil
}

func (rs *RemoteStore) WritePart(i int, src []float64) error {
	wi, local, err := rs.locate(i)
	if err != nil {
		return err
	}
	rows := matrix.PartRowsOf(rs.nrow, rs.partRows, i)
	req := partReq{Handle: rs.handle, NRow: rs.sh[wi].rows, NCol: rs.ncol,
		DT: uint8(matrix.F64), Part: local, Data: src[:rows*rs.ncol]}
	_, err = rs.c.call(context.Background(), wi, opWritePart, encodePartReq(req), nil)
	return err
}

// Free releases the worker-side copies (best-effort; the coordinator may
// already be closed during teardown).
func (rs *RemoteStore) Free() error {
	if rs.freed.Swap(true) || rs.c.closed.Load() {
		return nil
	}
	var active []int
	for wi := range rs.sh {
		if rs.sh[wi].nparts > 0 {
			active = append(active, wi)
		}
	}
	rs.c.freeHandle(rs.handle, active)
	return nil
}
