package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/matrix"
)

// Worker owns one shard's engine and its resident matrices: leaves the
// coordinator pushed by value, leaves it delegated by reference, and tall
// outputs kept for later passes. Matrices are addressed by coordinator-chosen
// string handles; re-registering a handle frees the previous occupant, so
// retried RPCs stay idempotent.
//
// Worker engines run with rewrites forced off: the coordinator rewrites the
// DAG once before splitting it, and sink programs arrive in raw
// (pre-publish-transform) form. A worker applying the affine aggregation-fold
// transform again would fold it once per shard.
type Worker struct {
	eng *core.Engine

	// boot is a random nonzero id minted once per Worker. A restarted
	// process mints a new one, so fenced requests carrying the old boot are
	// rejected with EpochError instead of executing against empty state.
	boot uint64

	fenced    atomic.Int64
	adoptions atomic.Int64

	mu    sync.Mutex
	epoch uint64 // session epoch adopted at hello; 0 = no session yet
	mats  map[string]*core.Mat
}

// NewWorker builds a worker around a fresh engine with the given
// configuration (DisableRewrites is forced on, see the type comment).
func NewWorker(cfg core.Config) (*Worker, error) {
	cfg.DisableRewrites = true
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &Worker{eng: eng, boot: rand.Uint64() | 1, mats: make(map[string]*core.Mat)}, nil
}

// Engine exposes the worker's engine (metrics registration, tests).
func (w *Worker) Engine() *core.Engine { return w.eng }

// Boot returns the worker's boot id (log lines, tests).
func (w *Worker) Boot() uint64 { return w.boot }

// FenceRejects returns how many requests this worker rejected on the
// (epoch, boot) fence.
func (w *Worker) FenceRejects() int64 { return w.fenced.Load() }

// Adoptions returns how many times a hello installed a new session epoch
// (wiping any prior session's resident matrices).
func (w *Worker) Adoptions() int64 { return w.adoptions.Load() }

// Resident returns the number of distinct resident matrices (aliased handles
// count once) — the handle-balance tests' probe.
func (w *Worker) Resident() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	seen := make(map[*core.Mat]bool, len(w.mats))
	for _, m := range w.mats {
		seen[m] = true
	}
	return len(seen)
}

// Handles returns the sorted registered handle names (diagnostics, tests).
func (w *Worker) Handles() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	hs := make([]string, 0, len(w.mats))
	for h := range w.mats {
		hs = append(hs, h)
	}
	sort.Strings(hs)
	return hs
}

// hello installs the coordinator's session epoch. A different epoch than the
// current one means a new (or resumed-elsewhere) session: any prior session's
// resident matrices are freed and the new epoch adopted. The same epoch means
// the coordinator is reconnecting to a live worker — state is kept, and the
// reported Kept count lets it skip replay entirely.
func (w *Worker) hello(q helloReq) ([]byte, error) {
	if q.Version != protocolVersion {
		return nil, fmt.Errorf("shard: protocol version %d, worker speaks %d", q.Version, protocolVersion)
	}
	if q.PartRows != w.eng.PartRows() {
		return nil, fmt.Errorf("shard: coordinator part-rows %d != worker part-rows %d", q.PartRows, w.eng.PartRows())
	}
	if q.Epoch == 0 {
		return nil, fmt.Errorf("shard: hello with zero epoch")
	}
	w.mu.Lock()
	var orphans map[string]*core.Mat
	if q.Epoch != w.epoch {
		orphans = w.mats
		w.mats = make(map[string]*core.Mat)
		w.epoch = q.Epoch
		w.adoptions.Add(1)
	}
	kept := make(map[*core.Mat]bool, len(w.mats))
	for _, m := range w.mats {
		kept[m] = true
	}
	w.mu.Unlock()
	seen := make(map[*core.Mat]bool, len(orphans))
	for _, m := range orphans {
		if seen[m] {
			continue
		}
		seen[m] = true
		if st := m.Store(); st != nil {
			st.Free()
		}
	}
	return encodeHelloResp(helloResp{
		Version:  protocolVersion,
		PartRows: w.eng.PartRows(),
		Boot:     w.boot,
		Kept:     int64(len(kept)),
	}), nil
}

// checkFence validates a non-hello request's (epoch, boot) prefix against the
// worker's session state and returns the request body proper.
func (w *Worker) checkFence(op uint8, body []byte) ([]byte, error) {
	epoch, boot, rest, err := splitFence(body)
	if err != nil {
		return nil, err
	}
	if boot != w.boot {
		w.fenced.Add(1)
		return nil, &EpochError{Op: op, Msg: fmt.Sprintf("request for boot %x, worker boot is %x (worker restarted)", boot, w.boot)}
	}
	w.mu.Lock()
	cur := w.epoch
	w.mu.Unlock()
	if epoch == 0 || epoch != cur {
		w.fenced.Add(1)
		return nil, &EpochError{Op: op, Msg: fmt.Sprintf("request epoch %x, worker session epoch is %x", epoch, cur)}
	}
	return rest, nil
}

// Handle dispatches one RPC: decode, execute, encode. Both transports call
// it — the loopback directly, the TCP server per frame — so every code path
// exercises the byte codec. Errors are returned (and wired as status-1
// frames), never panics: Instantiate converts malformed-program panics to
// errors before they reach here.
func (w *Worker) Handle(ctx context.Context, op uint8, body []byte) ([]byte, error) {
	if op == opHello {
		q, err := decodeHelloReq(body)
		if err != nil {
			return nil, err
		}
		return w.hello(q)
	}
	body, ferr := w.checkFence(op, body)
	if ferr != nil {
		return nil, ferr
	}
	switch op {
	case opPushPart:
		q, err := decodePartReq(body)
		if err != nil {
			return nil, err
		}
		return nil, w.pushPart(q)
	case opExec:
		q, err := decodeExecReq(body)
		if err != nil {
			return nil, err
		}
		resp, err := w.exec(ctx, q)
		if err != nil {
			return nil, err
		}
		return encodeExecResp(resp), nil
	case opFetchPart:
		q, err := decodeFetchReq(body)
		if err != nil {
			return nil, err
		}
		data, err := w.fetchPart(q)
		if err != nil {
			return nil, err
		}
		var wr wbuf
		wr.f64s(data)
		return wr.b, nil
	case opWritePart:
		q, err := decodePartReq(body)
		if err != nil {
			return nil, err
		}
		return nil, w.writePart(q)
	case opFreeMat:
		r := rbuf{b: body}
		handle := r.str()
		if r.err != nil {
			return nil, r.err
		}
		w.freeMat(handle)
		return nil, nil
	default:
		return nil, fmt.Errorf("shard: unknown op %d", op)
	}
}

func (w *Worker) lookup(handle string) (*core.Mat, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m, ok := w.mats[handle]
	if !ok {
		return nil, fmt.Errorf("shard: no matrix %q on this worker", handle)
	}
	return m, nil
}

// pushPart stores one partition of a coordinator-pushed leaf, creating the
// worker-resident matrix on first touch. Overwriting an already-pushed
// partition with the same bytes is the retry case and is harmless.
func (w *Worker) pushPart(q partReq) error {
	dt, err := core.LeafDType(q.DT)
	if err != nil {
		return err
	}
	w.mu.Lock()
	m, ok := w.mats[q.Handle]
	if !ok {
		st, serr := w.eng.NewStore(q.NRow, q.NCol)
		if serr != nil {
			w.mu.Unlock()
			return serr
		}
		m = core.NewLeaf(st, dt)
		w.mats[q.Handle] = m
	}
	w.mu.Unlock()
	if m.NRow() != q.NRow || m.NCol() != q.NCol || m.DType() != dt {
		return fmt.Errorf("shard: push %q: existing matrix is %dx%d dtype %d, push says %dx%d dtype %d",
			q.Handle, m.NRow(), m.NCol(), m.DType(), q.NRow, q.NCol, dt)
	}
	st := m.Store()
	if err := matrix.CheckPart(st, q.Part); err != nil {
		return err
	}
	rows := matrix.PartRowsOf(q.NRow, st.PartRows(), q.Part)
	if len(q.Data) != rows*q.NCol {
		return fmt.Errorf("shard: push %q part %d: %d values, want %d", q.Handle, q.Part, len(q.Data), rows*q.NCol)
	}
	return st.WritePart(q.Part, q.Data)
}

// exec runs one shard pass: instantiate the program against worker-resident
// leaves, materialize the tall targets (plus any cum.col nodes whose exit
// carries the coordinator needs), register kept outputs under their handles,
// and snapshot every sink's raw partial.
func (w *Worker) exec(ctx context.Context, q execRequest) (execResponse, error) {
	var resp execResponse
	nodes, sinks, err := q.Prog.Instantiate(q.Rows, func(ref string) (*core.Mat, error) {
		return w.lookup(ref)
	}, q.Carries)
	if err != nil {
		return resp, err
	}
	idx := func(i int32, what string) (*core.Mat, error) {
		if i < 0 || int(i) >= len(nodes) || nodes[i] == nil {
			return nil, fmt.Errorf("shard: exec %s index %d out of range", what, i)
		}
		return nodes[i], nil
	}
	var talls []*core.Mat
	inTalls := make(map[int32]bool, len(q.Prog.Talls))
	for _, ti := range q.Prog.Talls {
		m, err := idx(ti, "tall")
		if err != nil {
			return resp, err
		}
		talls = append(talls, m)
		inTalls[ti] = true
	}
	// Carry-out nodes that are not already tall targets materialize as
	// extras: the exit carry is the node's last row, which only exists once
	// the cumulative column ran over the whole shard.
	var extras []int32
	for _, ci := range q.CarryOut {
		if inTalls[ci] {
			continue
		}
		m, err := idx(ci, "carry")
		if err != nil {
			return resp, err
		}
		talls = append(talls, m)
		extras = append(extras, ci)
	}
	ms, err := w.eng.MaterializePass(ctx, talls, sinks, core.PassOptions{Owner: q.Owner})
	if err != nil {
		return resp, err
	}
	if len(q.CarryOut) > 0 {
		resp.Carries = make(map[int32][]float64, len(q.CarryOut))
		for _, ci := range q.CarryOut {
			row, rerr := lastRow(nodes[ci])
			if rerr != nil {
				return resp, rerr
			}
			resp.Carries[ci] = row
		}
	}
	for i, ti := range q.Prog.Talls {
		if i < len(q.Keeps) && q.Keeps[i] != "" {
			w.register(q.Keeps[i], nodes[ti])
		}
	}
	for _, ci := range extras {
		nodes[ci].Store().Free()
	}
	for _, s := range sinks {
		p := s.RawPartial()
		if p == nil {
			return resp, fmt.Errorf("shard: sink finished without a raw partial")
		}
		resp.Partials = append(resp.Partials, p)
	}
	resp.Stats = workerPassStats{
		Passes:        ms.Passes,
		Parts:         ms.Parts,
		Chunks:        ms.Chunks,
		BytesRead:     ms.BytesRead,
		BytesWritten:  ms.BytesWritten,
		NodesExecuted: ms.NodesExecuted,
		Wall:          ms.Wall,
	}
	return resp, nil
}

// lastRow reads the final row of a materialized matrix — the exit carry of a
// cumulative column fold (bitwise equal to the running accumulator after the
// shard's last row).
func lastRow(m *core.Mat) ([]float64, error) {
	st := m.Store()
	if st == nil {
		return nil, fmt.Errorf("shard: carry node not materialized")
	}
	p := st.NumParts() - 1
	rows := matrix.PartRowsOf(m.NRow(), st.PartRows(), p)
	buf := make([]float64, rows*m.NCol())
	if err := st.ReadPart(p, buf); err != nil {
		return nil, err
	}
	return append([]float64(nil), buf[(rows-1)*m.NCol():]...), nil
}

// referencedLocked reports whether any registered handle still references m
// (two tall positions unified onto one computation register the same matrix
// under two handles). Callers hold w.mu.
func (w *Worker) referencedLocked(m *core.Mat) bool {
	for _, o := range w.mats {
		if o == m {
			return true
		}
	}
	return false
}

// register installs a materialized output under a keep handle, freeing any
// previous occupant (the retried-exec case re-registers the same handle)
// unless another handle still aliases it.
func (w *Worker) register(handle string, m *core.Mat) {
	w.mu.Lock()
	old := w.mats[handle]
	w.mats[handle] = m
	freeOld := old != nil && old != m && !w.referencedLocked(old)
	w.mu.Unlock()
	if freeOld {
		if st := old.Store(); st != nil {
			st.Free()
		}
	}
}

func (w *Worker) fetchPart(q fetchReq) ([]float64, error) {
	m, err := w.lookup(q.Handle)
	if err != nil {
		return nil, err
	}
	st := m.Store()
	if err := matrix.CheckPart(st, q.Part); err != nil {
		return nil, err
	}
	rows := matrix.PartRowsOf(m.NRow(), st.PartRows(), q.Part)
	buf := make([]float64, rows*m.NCol())
	if err := st.ReadPart(q.Part, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writePart overwrites one partition of an existing worker matrix and bumps
// its content version, keeping the worker's CSE/cache keyed off stale data.
func (w *Worker) writePart(q partReq) error {
	m, err := w.lookup(q.Handle)
	if err != nil {
		return err
	}
	st := m.Store()
	if err := matrix.CheckPart(st, q.Part); err != nil {
		return err
	}
	rows := matrix.PartRowsOf(m.NRow(), st.PartRows(), q.Part)
	if len(q.Data) != rows*m.NCol() {
		return fmt.Errorf("shard: write %q part %d: %d values, want %d", q.Handle, q.Part, len(q.Data), rows*m.NCol())
	}
	if err := st.WritePart(q.Part, q.Data); err != nil {
		return err
	}
	w.eng.NoteMutation(m)
	return nil
}

// freeMat releases a handle; missing handles are fine (idempotent retries,
// best-effort cleanup paths). The backing store is freed only when no other
// handle aliases the same matrix.
func (w *Worker) freeMat(handle string) {
	w.mu.Lock()
	m := w.mats[handle]
	delete(w.mats, handle)
	free := m != nil && !w.referencedLocked(m)
	w.mu.Unlock()
	if free {
		if st := m.Store(); st != nil {
			st.Free()
		}
	}
}

// Close frees every resident matrix (aliased handles free their shared store
// once).
func (w *Worker) Close() error {
	w.mu.Lock()
	mats := w.mats
	w.mats = make(map[string]*core.Mat)
	w.mu.Unlock()
	seen := make(map[*core.Mat]bool, len(mats))
	for _, m := range mats {
		if seen[m] {
			continue
		}
		seen[m] = true
		if st := m.Store(); st != nil {
			st.Free()
		}
	}
	return nil
}
