package shard

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Transport carries one coordinator→worker RPC channel. Call sends one
// request and returns the response payload, honoring ctx's deadline.
// Implementations must be safe for concurrent Call.
type Transport interface {
	Call(ctx context.Context, op uint8, body []byte) ([]byte, error)
	Close() error
}

// WireError is an application-level error returned by a worker (a status-1
// response frame). It is never transient: the request was delivered and
// processed, the worker rejected it — retrying cannot help.
type WireError struct {
	Op  uint8
	Msg string
}

func (e *WireError) Error() string {
	return fmt.Sprintf("shard: remote %s error: %s", opName(e.Op), e.Msg)
}

// EpochError is the fencing rejection: the request's (epoch, boot) fence did
// not match the worker's current session epoch and boot id. It is returned by
// a restarted worker that has not re-done the hello handshake, or to a stale
// coordinator whose session the worker no longer serves. It is not transient
// — blind retries cannot help — but the coordinator's recovery path (re-hello,
// re-push, lineage replay) converts it into a retryable condition.
type EpochError struct {
	Op  uint8
	Msg string
}

func (e *EpochError) Error() string {
	return fmt.Sprintf("shard: %s fenced: %s", opName(e.Op), e.Msg)
}

// ShardError wraps any failure of one worker's RPC with its identity — the
// typed error the coordinator surfaces after the retry budget is exhausted.
// Reason is "epoch" when the final failure was a fencing rejection the
// recovery path could not clear.
type ShardError struct {
	Worker int
	Op     uint8
	Reason string
	Err    error
}

func (e *ShardError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("shard: worker %d %s (%s): %v", e.Worker, opName(e.Op), e.Reason, e.Err)
	}
	return fmt.Sprintf("shard: worker %d %s: %v", e.Worker, opName(e.Op), e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// isTransient classifies an RPC failure for the retry policy, mirroring the
// storage layer's stance: network-level faults (timeouts, resets, torn
// connections, injected faults) are retried against idempotent ops; remote
// application errors and context cancellation are not.
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	var we *WireError
	if errors.As(err, &we) {
		return false
	}
	var ee *EpochError
	if errors.As(err, &ee) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var fe *FaultError
	if errors.As(err, &fe) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return true
	}
	return false
}

// loopback is the in-process transport: request bytes go straight into the
// worker's Handle dispatch, so tests exercise the full wire codec with
// deterministic delivery. The worker behind it is swappable — that is the
// chaos harness's crash/restart seam.
type loopback struct {
	mu sync.Mutex
	w  *Worker
}

func (l *loopback) worker() *Worker {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w
}

// swap installs a replacement worker (a simulated process restart) and
// returns the previous one.
func (l *loopback) swap(w *Worker) *Worker {
	l.mu.Lock()
	defer l.mu.Unlock()
	old := l.w
	l.w = w
	return old
}

func (l *loopback) Call(ctx context.Context, op uint8, body []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.worker().Handle(ctx, op, body)
}

func (l *loopback) Close() error { return nil }

// unwrapper is implemented by transport wrappers (fault injection, chaos) so
// the chaos harness and the handle-balance checker can reach the terminal
// loopback.
type unwrapper interface{ Unwrap() Transport }

// loopbackOf walks a wrapper chain down to the in-process loopback, or nil
// for TCP transports.
func loopbackOf(t Transport) *loopback {
	for t != nil {
		if lb, ok := t.(*loopback); ok {
			return lb
		}
		u, ok := t.(unwrapper)
		if !ok {
			return nil
		}
		t = u.Unwrap()
	}
	return nil
}

// TCP framing: a request is [u32 BE frame length][u8 op][body], a response is
// [u32 BE frame length][u8 status][payload] with status 0 = ok (payload is
// the response body), 1 = application error (payload is the message), and
// 2 = fencing rejection (payload is the message; decoded as *EpochError so
// the coordinator's recovery path can distinguish it from plain rejections).
const (
	statusOK    uint8 = 0
	statusErr   uint8 = 1
	statusEpoch uint8 = 2

	// maxFrame bounds one frame; larger means a corrupt stream.
	maxFrame = 1<<28 + 64
)

// tcpTransport is a lazy-dialing single-connection client. One in-flight
// request per connection (the coordinator's per-worker RPCs are sequential
// within a pass phase); any I/O error tears the connection down so the next
// attempt redials — together with idempotent ops this makes mid-stream
// resets retryable. A failure on a reused connection before any response
// byte arrived (the idle-reset / ECONNRESET case) redials and resends once
// within the same Call, so a worker restart between passes costs one redial
// instead of one retry-budget attempt.
type tcpTransport struct {
	addr    string
	timeout time.Duration

	redials atomic.Int64

	mu   sync.Mutex
	conn net.Conn
}

func newTCPTransport(addr string, timeout time.Duration) *tcpTransport {
	return &tcpTransport{addr: addr, timeout: timeout}
}

// Redials returns how many same-call redial-and-resend recoveries this
// transport performed (tests, observability).
func (t *tcpTransport) Redials() int64 { return t.redials.Load() }

func (t *tcpTransport) Call(ctx context.Context, op uint8, body []byte) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	deadline := time.Now().Add(t.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	reused := t.conn != nil
	resp, sawResp, err := t.attempt(ctx, op, body, deadline)
	if err != nil && reused && !sawResp && ctx.Err() == nil {
		// The stale-connection case: the peer closed the idle conn (or
		// restarted) and nothing of the response arrived, so resending on a
		// fresh dial is safe exactly once per call.
		t.redials.Add(1)
		resp, _, err = t.attempt(ctx, op, body, deadline)
	}
	return resp, err
}

// attempt sends one framed request on the current (or freshly dialed)
// connection. sawResp reports whether any response bytes arrived — if so the
// request was processed and the caller must not silently resend it.
func (t *tcpTransport) attempt(ctx context.Context, op uint8, body []byte, deadline time.Time) (payload []byte, sawResp bool, err error) {
	if t.conn == nil {
		d := net.Dialer{Deadline: deadline}
		conn, derr := d.DialContext(ctx, "tcp", t.addr)
		if derr != nil {
			return nil, false, derr
		}
		t.conn = conn
	}
	conn := t.conn
	if err := conn.SetDeadline(deadline); err != nil {
		t.drop()
		return nil, false, err
	}
	frame := make([]byte, 5+len(body))
	binary.BigEndian.PutUint32(frame, uint32(1+len(body)))
	frame[4] = op
	copy(frame[5:], body)
	if _, err := conn.Write(frame); err != nil {
		t.drop()
		return nil, false, err
	}
	var hdr [4]byte
	if n, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.drop()
		return nil, n > 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		t.drop()
		return nil, true, fmt.Errorf("shard: response frame length %d out of range", n)
	}
	resp := make([]byte, n)
	if _, err := io.ReadFull(conn, resp); err != nil {
		t.drop()
		return nil, true, err
	}
	switch resp[0] {
	case statusOK:
		return resp[1:], true, nil
	case statusErr:
		return nil, true, &WireError{Op: op, Msg: string(resp[1:])}
	case statusEpoch:
		return nil, true, &EpochError{Op: op, Msg: string(resp[1:])}
	default:
		t.drop()
		return nil, true, fmt.Errorf("shard: response status %d unknown", resp[0])
	}
}

func (t *tcpTransport) drop() {
	if t.conn != nil {
		t.conn.Close()
		t.conn = nil
	}
}

func (t *tcpTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.drop()
	return nil
}

// Server serves a Worker over TCP. Accepted counts request frames read,
// Answered counts response frames written; Drain stops accepting new
// connections, waits for in-flight requests, and the two counters match on a
// clean shutdown — the smoke test's drain assertion.
type Server struct {
	w  *Worker
	ln net.Listener

	accepted atomic.Int64
	answered atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// NewServer listens on addr (e.g. "127.0.0.1:0") and serves w until Drain or
// Close.
func NewServer(addr string, w *Worker) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{w: w, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Accepted returns the number of request frames read so far.
func (s *Server) Accepted() int64 { return s.accepted.Load() }

// Answered returns the number of response frames written so far.
func (s *Server) Answered() int64 { return s.answered.Load() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n < 1 || n > maxFrame {
			return
		}
		req := make([]byte, n)
		if _, err := io.ReadFull(conn, req); err != nil {
			return
		}
		s.accepted.Add(1)
		resp, herr := s.w.Handle(context.Background(), req[0], req[1:])
		var payload []byte
		status := statusOK
		if herr != nil {
			status = statusErr
			var ee *EpochError
			if errors.As(herr, &ee) {
				status = statusEpoch
				payload = []byte(ee.Msg)
			} else {
				payload = []byte(herr.Error())
			}
		} else {
			payload = resp
		}
		frame := make([]byte, 5+len(payload))
		binary.BigEndian.PutUint32(frame, uint32(1+len(payload)))
		frame[4] = status
		copy(frame[5:], payload)
		if _, err := conn.Write(frame); err != nil {
			return
		}
		s.answered.Add(1)
	}
}

// Drain stops accepting, waits for every in-flight request to be answered,
// then closes all connections. Safe to call more than once.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	// Connections idle between requests park in ReadFull; nudge them loose so
	// serveConn returns once its current request (if any) is answered.
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			return
		case <-time.After(50 * time.Millisecond):
			s.mu.Lock()
			for c := range s.conns {
				c.SetReadDeadline(time.Now())
			}
			s.mu.Unlock()
		}
	}
}

// Close is Drain.
func (s *Server) Close() error {
	s.Drain()
	return nil
}
