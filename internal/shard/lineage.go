package shard

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// lineageRec records how one pass produced its kept talls: the serialized
// program (sinks stripped — replay reconstructs worker-resident state, it
// must never re-publish aggregates), the keep handle per tall position, and
// per-worker execution state. Together with the pushed-leaf registry this is
// enough to rebuild any worker's resident matrices from scratch after a
// restart: re-push its leaves, then re-run each record's shard in pass order,
// threading the recorded entry carries.
type lineageRec struct {
	seq  int64
	nrow int64
	prog *core.Program
	// keeps is the worker-side handle per tall position; leafRefs are the
	// program's leaf handles (registry pushes or earlier records' keeps).
	keeps    []string
	leafRefs []string

	carriesIn []map[int32][]float64 // per worker: entry carries its exec was issued with
	done      []bool                // per worker: exec completed there
	live      []bool                // per keep position: a RemoteStore still references it
	final     bool                  // pass finished (stores attached)
}

// lineage is the coordinator's replay table. Records are registered when a
// pass's exec phase starts, finalized when its RemoteStores attach, and
// pruned once no live keep depends on them (directly or through a chain of
// keep-consuming passes).
type lineage struct {
	mu   sync.Mutex
	seq  int64
	recs []*lineageRec
}

func leafRefsOf(p *core.Program) []string {
	var refs []string
	seen := make(map[string]bool)
	for i := range p.Nodes {
		if l := p.Nodes[i].Leaf; l != "" && !seen[l] {
			seen[l] = true
			refs = append(refs, l)
		}
	}
	return refs
}

// begin registers an in-flight pass. The program is shallow-copied with its
// sinks stripped so replay recomputes only the kept talls.
func (l *lineage) begin(nworkers int, nrow int64, prog *core.Program, keeps []string) *lineageRec {
	stripped := *prog
	stripped.Sinks = nil
	rec := &lineageRec{
		nrow:      nrow,
		prog:      &stripped,
		keeps:     append([]string(nil), keeps...),
		leafRefs:  leafRefsOf(prog),
		carriesIn: make([]map[int32][]float64, nworkers),
		done:      make([]bool, nworkers),
		live:      make([]bool, len(keeps)),
	}
	l.mu.Lock()
	l.seq++
	rec.seq = l.seq
	l.recs = append(l.recs, rec)
	l.mu.Unlock()
	return rec
}

// setCarry records the entry carries worker wi's exec is about to be issued
// with (the sequential cum chain's resume point).
func (l *lineage) setCarry(rec *lineageRec, wi int, carries map[int32][]float64) {
	if rec == nil {
		return
	}
	l.mu.Lock()
	rec.carriesIn[wi] = carries
	l.mu.Unlock()
}

// markDone records that worker wi executed its shard of rec's pass.
func (l *lineage) markDone(rec *lineageRec, wi int) {
	if rec == nil {
		return
	}
	l.mu.Lock()
	rec.done[wi] = true
	l.mu.Unlock()
}

// finish finalizes a successful pass; live flags which keep positions got a
// RemoteStore attached (a lost materialization race leaves one dead).
func (l *lineage) finish(rec *lineageRec, live []bool) {
	if rec == nil {
		return
	}
	l.mu.Lock()
	copy(rec.live, live)
	rec.final = true
	l.pruneLocked()
	l.mu.Unlock()
}

// abort drops an in-flight record after its pass failed (the keeps it would
// have produced are being cleaned up).
func (l *lineage) abort(rec *lineageRec) {
	if rec == nil {
		return
	}
	l.mu.Lock()
	for i, r := range l.recs {
		if r == rec {
			l.recs = append(l.recs[:i], l.recs[i+1:]...)
			break
		}
	}
	l.mu.Unlock()
}

// markDead clears the live flag of any keep registered under handle (its
// RemoteStore was freed) and prunes records no live chain depends on.
func (l *lineage) markDead(handle string) {
	l.mu.Lock()
	for _, r := range l.recs {
		for j, h := range r.keeps {
			if h == handle {
				r.live[j] = false
			}
		}
	}
	l.pruneLocked()
	l.mu.Unlock()
}

// neededLocked returns the records (in pass order) whose replay may still be
// required: those with live keeps or still in flight, plus — transitively —
// earlier records whose keeps they consume as leaves.
func (l *lineage) neededLocked() []*lineageRec {
	need := make(map[string]bool)
	mark := make([]bool, len(l.recs))
	for i := len(l.recs) - 1; i >= 0; i-- {
		r := l.recs[i]
		wanted := !r.final
		for j := range r.keeps {
			if r.live[j] || need[r.keeps[j]] {
				wanted = true
			}
		}
		if !wanted {
			continue
		}
		mark[i] = true
		for _, ref := range r.leafRefs {
			need[ref] = true
		}
	}
	out := l.recs[:0:0]
	for i, k := range mark {
		if k {
			out = append(out, l.recs[i])
		}
	}
	return out
}

func (l *lineage) pruneLocked() {
	needed := l.neededLocked()
	if len(needed) != len(l.recs) {
		l.recs = needed
	}
}

// replayStep is one record's worker-wi slice of the recovery plan, snapshotted
// under the lineage lock so replay runs race-free against concurrent passes.
type replayStep struct {
	seq     int64
	nrow    int64
	prog    *core.Program
	keeps   []string
	carries map[int32][]float64
	live    []bool
	final   bool
}

// replayPlan returns the pass-ordered steps needed to rebuild worker wi's
// kept talls, validating that every consumed leaf is either re-pushable
// (avail) or the keep of an earlier replayed record. Records whose exec never
// ran on wi are skipped — the interrupted pass's own retry covers them.
func (l *lineage) replayPlan(wi int, avail map[string]bool) ([]replayStep, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	recs := l.neededLocked()
	keeps := make(map[string]bool)
	var plan []replayStep
	for _, r := range recs {
		for _, ref := range r.leafRefs {
			if !avail[ref] && !keeps[ref] {
				return nil, fmt.Errorf("shard: lineage broken: pass %d consumes %q, which is neither a re-pushable leaf nor a replayable keep", r.seq, ref)
			}
		}
		for _, h := range r.keeps {
			if h != "" {
				keeps[h] = true
			}
		}
		if !r.done[wi] {
			continue
		}
		plan = append(plan, replayStep{
			seq:     r.seq,
			nrow:    r.nrow,
			prog:    r.prog,
			keeps:   append([]string(nil), r.keeps...),
			carries: r.carriesIn[wi],
			live:    append([]bool(nil), r.live...),
			final:   r.final,
		})
	}
	return plan, nil
}

// snapshot copies the table for checkpointing.
func (l *lineage) snapshot() (seq int64, recs []*lineageRec) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq = l.seq
	for _, r := range l.recs {
		cp := &lineageRec{
			seq:       r.seq,
			nrow:      r.nrow,
			prog:      r.prog,
			keeps:     append([]string(nil), r.keeps...),
			leafRefs:  append([]string(nil), r.leafRefs...),
			carriesIn: append([]map[int32][]float64(nil), r.carriesIn...),
			done:      append([]bool(nil), r.done...),
			live:      append([]bool(nil), r.live...),
			final:     r.final,
		}
		recs = append(recs, cp)
	}
	return seq, recs
}

// restore installs a checkpointed table.
func (l *lineage) restore(seq int64, recs []*lineageRec) {
	l.mu.Lock()
	l.seq = seq
	l.recs = recs
	l.mu.Unlock()
}
