package shard

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/matrix"
)

// countingTransport counts non-recovery exec requests passing through — the
// probe that pins which workers re-execute after a fault.
type countingTransport struct {
	inner Transport
	execs atomic.Int64
}

func (c *countingTransport) Call(ctx context.Context, op uint8, body []byte) ([]byte, error) {
	if op == opExec && !isRecoveryCtx(ctx) {
		c.execs.Add(1)
	}
	return c.inner.Call(ctx, op, body)
}

func (c *countingTransport) Close() error     { return c.inner.Close() }
func (c *countingTransport) Unwrap() Transport { return c.inner }

// dropOnce fails the first exec it sees with a transient fault, delivering
// nothing.
type dropOnce struct {
	inner Transport
	armed atomic.Bool
}

func (d *dropOnce) Call(ctx context.Context, op uint8, body []byte) ([]byte, error) {
	if op == opExec && d.armed.CompareAndSwap(true, false) {
		return nil, &FaultError{Kind: "drop", Op: op}
	}
	return d.inner.Call(ctx, op, body)
}

func (d *dropOnce) Close() error     { return d.inner.Close() }
func (d *dropOnce) Unwrap() Transport { return d.inner }

// failExecTransport rejects every exec with a permanent (non-transient)
// remote error; other ops pass through.
type failExecTransport struct {
	inner Transport
}

func (f *failExecTransport) Call(ctx context.Context, op uint8, body []byte) ([]byte, error) {
	if op == opExec {
		return nil, &WireError{Op: op, Msg: "injected permanent failure"}
	}
	return f.inner.Call(ctx, op, body)
}

func (f *failExecTransport) Close() error     { return f.inner.Close() }
func (f *failExecTransport) Unwrap() Transport { return f.inner }

// TestWorkerFenceRejectsStaleState pins the fencing contract at the Handle
// level: wrong boot and wrong epoch are typed EpochError rejections, a hello
// with a new epoch wipes the previous session's residents, and a hello with
// the same epoch keeps them.
func TestWorkerFenceRejectsStaleState(t *testing.T) {
	w, err := NewWorker(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx := context.Background()
	hello := func(epoch uint64) helloResp {
		t.Helper()
		rb, herr := w.Handle(ctx, opHello, encodeHelloReq(helloReq{Version: protocolVersion, PartRows: testPartRows, Epoch: epoch}))
		if herr != nil {
			t.Fatal(herr)
		}
		h, derr := decodeHelloResp(rb)
		if derr != nil {
			t.Fatal(derr)
		}
		return h
	}
	h := hello(5)
	if h.Boot != w.Boot() || h.Boot == 0 {
		t.Fatalf("hello boot %x, want worker boot %x (nonzero)", h.Boot, w.Boot())
	}
	rows := int64(testPartRows)
	data := make([]float64, rows*int64(testNCol))
	push := encodePartReq(partReq{Handle: "m1", NRow: rows, NCol: testNCol, DT: uint8(matrix.F64), Part: 0, Data: data})
	if _, err := w.Handle(ctx, opPushPart, fenceBody(5, w.Boot(), push)); err != nil {
		t.Fatal(err)
	}
	var ee *EpochError
	if _, err := w.Handle(ctx, opPushPart, fenceBody(5, w.Boot()+1, push)); !errors.As(err, &ee) {
		t.Fatalf("stale boot: got %v, want EpochError", err)
	}
	if _, err := w.Handle(ctx, opPushPart, fenceBody(6, w.Boot(), push)); !errors.As(err, &ee) {
		t.Fatalf("stale epoch: got %v, want EpochError", err)
	}
	if got := w.FenceRejects(); got != 2 {
		t.Fatalf("fence rejects = %d, want 2", got)
	}
	if h := hello(5); h.Kept != 1 {
		t.Fatalf("same-epoch hello kept %d, want 1", h.Kept)
	}
	if h := hello(9); h.Kept != 0 {
		t.Fatalf("new-epoch hello kept %d, want 0 after wipe", h.Kept)
	}
	if got := w.Resident(); got != 0 {
		t.Fatalf("resident after epoch adoption = %d, want 0", got)
	}
	if got := w.Adoptions(); got != 2 {
		t.Fatalf("adoptions = %d, want 2", got)
	}
}

// TestShardWorkerRestartRecovery is the tentpole's in-proc differential: the
// full workload, with a seeded kill/restart of one worker at an exec
// boundary, must stay bit-identical to the unfaulted single-engine run, the
// coordinator must log at least one recovery, and worker handle sets must
// balance afterwards.
func TestShardWorkerRestartRecovery(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	local, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := runWorkload(t, local, ctx)
	cases := []struct {
		name   string
		worker int
		cfg    ChaosConfig
	}{
		{"w0-before-exec2", 0, ChaosConfig{Worker: testConfig(), CrashBeforeExec: []int64{2}}},
		{"w1-before-exec2", 1, ChaosConfig{Worker: testConfig(), CrashBeforeExec: []int64{2}}},
		{"w0-after-exec1", 0, ChaosConfig{Worker: testConfig(), CrashAfterExec: []int64{1}}},
		{"w1-after-exec1", 1, ChaosConfig{Worker: testConfig(), CrashAfterExec: []int64{1}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var chaos *ChaosTransport
			eng, coord := newShardedEngine(t, 2, func(wi int, tr Transport) Transport {
				if wi != tc.worker {
					return tr
				}
				ct, cerr := NewChaosTransport(tr, tc.cfg)
				if cerr != nil {
					t.Fatal(cerr)
				}
				chaos = ct
				return ct
			})
			got := runWorkload(t, eng, ctx)
			for name, w := range want {
				sameDense(t, name, w, got[name])
			}
			if chaos.Crashes() == 0 {
				t.Fatal("chaos schedule never fired")
			}
			if coord.Recoveries() == 0 {
				t.Fatal("no recovery recorded despite a worker restart")
			}
			if coord.ReplayedKeeps() == 0 {
				t.Fatal("no keeps replayed despite a worker restart")
			}
			if err := coord.CheckHandleBalance(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardCumCarryResume pins the mid-chain resume semantics of sequential
// cum.col passes: when a later shard's exec faults, the pass resumes from the
// recorded carry — earlier shards are NOT re-executed — and the result stays
// bitwise identical to the unfaulted single-engine run.
func TestShardCumCarryResume(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	run := func(eng *core.Engine) *dense.Dense {
		leaf, err := eng.Generate(testNRow, testNCol, matrix.F64, fillFrac)
		if err != nil {
			t.Fatal(err)
		}
		cum := core.CumCol(leaf, mustAgg(t, "+"))
		if err := eng.MaterializeCtx(ctx, []*core.Mat{cum}, nil); err != nil {
			t.Fatal(err)
		}
		d, err := eng.ToDense(cum)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	local, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := run(local)

	t.Run("transient-drop", func(t *testing.T) {
		var w0 countingTransport
		eng, _ := newShardedEngine(t, 3, func(wi int, tr Transport) Transport {
			switch wi {
			case 0:
				w0.inner = tr
				return &w0
			case 1:
				d := &dropOnce{inner: tr}
				d.armed.Store(true)
				return d
			}
			return tr
		})
		got := run(eng)
		sameDense(t, "cumsum", want, got)
		if n := w0.execs.Load(); n != 1 {
			t.Fatalf("worker 0 executed %d times; a mid-chain fault must resume, not restart the chain", n)
		}
	})

	t.Run("crash-restart", func(t *testing.T) {
		var w0 countingTransport
		var chaos *ChaosTransport
		eng, coord := newShardedEngine(t, 3, func(wi int, tr Transport) Transport {
			switch wi {
			case 0:
				w0.inner = tr
				return &w0
			case 1:
				ct, cerr := NewChaosTransport(tr, ChaosConfig{Worker: testConfig(), CrashBeforeExec: []int64{1}})
				if cerr != nil {
					t.Fatal(cerr)
				}
				chaos = ct
				return ct
			}
			return tr
		})
		got := run(eng)
		sameDense(t, "cumsum", want, got)
		if n := w0.execs.Load(); n != 1 {
			t.Fatalf("worker 0 executed %d times; recovery of worker 1 must not re-run worker 0", n)
		}
		if chaos.Crashes() != 1 || coord.Recoveries() == 0 {
			t.Fatalf("crashes=%d recoveries=%d, want 1/≥1", chaos.Crashes(), coord.Recoveries())
		}
		if err := coord.CheckHandleBalance(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestShardKeepLeakOnFailure pins that a RunDAG failure after partial keep
// allocation leaks no worker-side handles: keeps registered by the workers
// that did execute are cleaned up, and only registry leaves stay resident.
func TestShardKeepLeakOnFailure(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	eng, coord := newShardedEngine(t, 2, func(wi int, tr Transport) Transport {
		if wi == 1 {
			return &failExecTransport{inner: tr}
		}
		return tr
	})
	leaf, err := eng.Generate(testNRow, testNCol, matrix.F64, fillInt)
	if err != nil {
		t.Fatal(err)
	}
	sap := core.Sapply(leaf, mustUnary(t, "square"))
	if err := eng.MaterializeCtx(ctx, []*core.Mat{sap}, nil); err == nil {
		t.Fatal("materialize succeeded despite a permanently failing worker")
	}
	var se *ShardError
	werr := eng.MaterializeCtx(ctx, []*core.Mat{sap}, nil)
	if !errors.As(werr, &se) || se.Worker != 1 || se.Op != opExec {
		t.Fatalf("want ShardError{Worker:1, Op:exec}, got %v", werr)
	}
	// Worker 0 executed and registered the keep; the failed pass must have
	// freed it. Only the pushed leaf may remain resident anywhere.
	if err := coord.CheckHandleBalance(); err != nil {
		t.Fatal(err)
	}
	for wi, tr := range coord.trs {
		lb := loopbackOf(tr)
		if got := lb.worker().Resident(); got != 1 {
			t.Fatalf("worker %d resident=%d after failed pass, want 1 (the leaf)", wi, got)
		}
	}
}

// miniServer answers exactly one framed request per accepted connection, then
// closes it — every reused coordinator connection sees the idle-reset case.
func miniServer(t *testing.T) (addr string, served *atomic.Int64, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	go func() {
		for {
			conn, aerr := ln.Accept()
			if aerr != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var hdr [4]byte
				if _, rerr := io.ReadFull(conn, hdr[:]); rerr != nil {
					return
				}
				req := make([]byte, binary.BigEndian.Uint32(hdr[:]))
				if _, rerr := io.ReadFull(conn, req); rerr != nil {
					return
				}
				count.Add(1)
				payload := []byte("pong")
				frame := make([]byte, 5+len(payload))
				binary.BigEndian.PutUint32(frame, uint32(1+len(payload)))
				frame[4] = statusOK
				copy(frame[5:], payload)
				conn.Write(frame)
			}(conn)
		}
	}()
	return ln.Addr().String(), &count, func() { ln.Close() }
}

// TestTCPRedialOnce pins the reconnect contract: a connection reset on a
// reused, lazily-dialed connection redials and resends exactly once within
// the same call — no retry-budget attempt consumed, one redial counted per
// reset.
func TestTCPRedialOnce(t *testing.T) {
	addr, served, stop := miniServer(t)
	defer stop()
	tr := newTCPTransport(addr, 2*time.Second)
	defer tr.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		resp, err := tr.Call(ctx, opFetchPart, []byte{1, 2, 3})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if string(resp) != "pong" {
			t.Fatalf("call %d: payload %q", i, resp)
		}
	}
	// Call 0 dials fresh; calls 1 and 2 each find the conn closed by the
	// server and must redial exactly once.
	if got := tr.Redials(); got != 2 {
		t.Fatalf("redials = %d, want 2", got)
	}
	if got := served.Load(); got != 3 {
		t.Fatalf("server served %d requests, want 3 (no duplicate resends)", got)
	}
}

// TestTCPRedialExhaustionTypedError pins the failure shape when the worker is
// gone for good: the retry budget drains and the caller gets
// ShardError{Worker, Op} with a transient cause inside.
func TestTCPRedialExhaustionTypedError(t *testing.T) {
	w, err := NewWorker(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	srv, err := NewServer("127.0.0.1:0", w)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(Config{Addrs: []string{srv.Addr()}, Retries: 2,
		RetryBackoff: time.Millisecond, RPCTimeout: time.Second}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv.Close()
	_, cerr := coord.call(context.Background(), 0, opFetchPart,
		encodeFetchReq(fetchReq{Handle: "nope", Part: 0}), nil)
	var se *ShardError
	if !errors.As(cerr, &se) || se.Worker != 0 || se.Op != opFetchPart {
		t.Fatalf("want ShardError{Worker:0, Op:fetchpart}, got %v", cerr)
	}
	_, _, retries := coord.Totals()
	if retries != 2 {
		t.Fatalf("retries = %d, want the full budget of 2", retries)
	}
}

// TestShardCheckpointResume pins coordinator-restart semantics: a second
// coordinator built from the sidecar joins the same session epoch (workers
// keep their residents, the registry needs no re-push), and a subsequent
// worker restart still recovers via the re-bound registry.
func TestShardCheckpointResume(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	ckpath := filepath.Join(t.TempDir(), "coord.ck")
	wcfg := testConfig()
	w0, err := NewWorker(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := NewWorker(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	srv0, err := NewServer("127.0.0.1:0", w0)
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := NewServer("127.0.0.1:0", w1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv1.Close()
	addr0 := srv0.Addr()
	cfg := Config{Addrs: []string{addr0, srv1.Addr()}, CheckpointPath: ckpath,
		Retries: 6, RetryBackoff: time.Millisecond, RPCTimeout: 2 * time.Second}

	eng, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	coordA, err := NewCoordinator(cfg, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetRemoteExecutor(coordA)
	leaf, err := eng.Generate(testNRow, testNCol, matrix.F64, fillInt)
	if err != nil {
		t.Fatal(err)
	}
	plus := mustAgg(t, "+")
	sum := core.Agg(leaf, plus)
	if err := eng.MaterializeCtx(ctx, nil, []*core.Sink{sum}); err != nil {
		t.Fatal(err)
	}
	if got := sum.Result(); got == nil || len(got.Data) != 1 {
		t.Fatalf("sum result %v, want a scalar", got)
	}
	coordA.Close()

	// Same process, new coordinator: resumes the epoch and the registry.
	coordB, err := NewCoordinator(cfg, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer coordB.Close()
	if coordB.Epoch() != coordA.Epoch() {
		t.Fatalf("resumed epoch %x != original %x", coordB.Epoch(), coordA.Epoch())
	}
	eng.SetRemoteExecutor(coordB)
	max2 := core.Agg(leaf, mustAgg(t, "max"))
	if err := eng.MaterializeCtx(ctx, nil, []*core.Sink{max2}); err != nil {
		t.Fatal(err)
	}
	sentB, _, _ := coordB.Totals()
	leafBytes := int64(testNRow * testNCol * 8)
	if sentB >= leafBytes {
		t.Fatalf("resumed coordinator sent %d bytes; a re-push of the %d-byte leaf means the registry did not resume", sentB, leafBytes)
	}

	// Now kill -9 worker 0 and restart it on the same address: the next pass
	// must fence, recover (re-push via the re-bound registry), and agree.
	srv0.Close()
	w0.Close()
	w0b, err := NewWorker(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w0b.Close()
	srv0b, err := NewServer(addr0, w0b)
	if err != nil {
		t.Fatal(err)
	}
	defer srv0b.Close()
	// A fresh expression (not the cached sum) so a real remote pass runs.
	sum3 := core.Agg(core.Sapply(leaf, mustUnary(t, "square")), plus)
	if err := eng.MaterializeCtx(ctx, nil, []*core.Sink{sum3}); err != nil {
		t.Fatal(err)
	}
	if coordB.Recoveries() == 0 {
		t.Fatal("no recovery recorded after the worker restart")
	}
	// fillInt produces small integers, so the sum of squares is exact in
	// float64 regardless of reduction order.
	var wantSq float64
	for g := int64(0); g < testNRow; g++ {
		for c := int64(0); c < testNCol; c++ {
			v := float64((g*7+c*3)%11) - 5
			wantSq += v * v
		}
	}
	got := sum3.Result()
	for i := range got.Data {
		if math.Float64bits(wantSq) != math.Float64bits(got.Data[i]) {
			t.Fatalf("sum diverged after recovery: %v != %v", wantSq, got.Data[i])
		}
	}
}
