package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
)

// FaultError marks an injected transport fault. It classifies as transient,
// so the coordinator's retry policy must absorb injected faults exactly as it
// absorbs real network ones.
type FaultError struct {
	Kind string
	Op   uint8
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("shard: injected %s fault on %s", e.Kind, opName(e.Op))
}

// FaultConfig drives the fault-injecting transport wrapper. All probabilities
// are per-Call, drawn from one seeded stream, so a test run is reproducible.
type FaultConfig struct {
	Seed int64
	// DropProb loses the request before delivery: the inner transport is
	// never called and the caller sees a transient error.
	DropProb float64
	// ResetProb delivers and EXECUTES the request but loses the response —
	// the mid-stream connection reset case. Retries then re-execute the op,
	// so this axis tests handler idempotency, not just retry plumbing.
	ResetProb float64
	// DupProb delivers the request twice back-to-back (a retransmit racing a
	// slow ack); the second response is returned.
	DupProb float64
	// DelayProb stalls the call by Delay before delivery (latency spike).
	DelayProb float64
	Delay     time.Duration
}

// FaultTransport wraps a Transport with seeded fault injection. Safe for
// concurrent Call (the RNG is mutex-guarded; concurrent schedules vary, but
// single-goroutine phases replay exactly).
type FaultTransport struct {
	inner Transport
	cfg   FaultConfig

	mu  sync.Mutex
	rng *rand.Rand

	drops, resets, dups, delays int64
}

// NewFaultTransport wraps inner with the given fault plan.
func NewFaultTransport(inner Transport, cfg FaultConfig) *FaultTransport {
	return &FaultTransport{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Injected returns how many faults of each kind fired.
func (t *FaultTransport) Injected() (drops, resets, dups, delays int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops, t.resets, t.dups, t.delays
}

func (t *FaultTransport) Call(ctx context.Context, op uint8, body []byte) ([]byte, error) {
	t.mu.Lock()
	delay := t.rng.Float64() < t.cfg.DelayProb
	drop := t.rng.Float64() < t.cfg.DropProb
	reset := t.rng.Float64() < t.cfg.ResetProb
	dup := t.rng.Float64() < t.cfg.DupProb
	switch {
	case delay:
		t.delays++
	}
	switch {
	case drop:
		t.drops++
	case reset:
		t.resets++
	case dup:
		t.dups++
	}
	t.mu.Unlock()
	if delay {
		select {
		case <-time.After(t.cfg.Delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if drop {
		return nil, &FaultError{Kind: "drop", Op: op}
	}
	if reset {
		// The worker sees and executes the request; the response is lost.
		t.inner.Call(ctx, op, body)
		return nil, &FaultError{Kind: "reset", Op: op}
	}
	if dup {
		if _, err := t.inner.Call(ctx, op, body); err != nil {
			return nil, err
		}
	}
	return t.inner.Call(ctx, op, body)
}

func (t *FaultTransport) Close() error { return t.inner.Close() }

// Unwrap exposes the wrapped transport so loopbackOf can reach the terminal
// in-process loopback through fault-injection layers.
func (t *FaultTransport) Unwrap() Transport { return t.inner }

// recoveryCtxKey marks RPCs issued by the coordinator's recovery path
// (re-hello, re-push, lineage replay). The chaos transport skips crash
// injection on marked calls so a scheduled crash fires once, at the request
// it targets, instead of re-firing against its own repair traffic.
type recoveryCtxKey struct{}

func withRecovery(ctx context.Context) context.Context {
	return context.WithValue(ctx, recoveryCtxKey{}, true)
}

func isRecoveryCtx(ctx context.Context) bool {
	v, _ := ctx.Value(recoveryCtxKey{}).(bool)
	return v
}

// ChaosConfig schedules worker crash/restarts at exec (pass) boundaries.
// Indexes are 1-based counts of non-recovery opExec calls seen on this
// transport: CrashBeforeExec = {2} kills and restarts the worker just before
// its second pass request is delivered (the request then hits the fresh
// worker's fence), CrashAfterExec = {2} crashes right after the second pass
// executed (the pass succeeded, its kept talls die and must be replayed
// before pass three).
type ChaosConfig struct {
	// Worker configures replacement workers minted at each crash.
	Worker core.Config
	// CrashBeforeExec crashes the worker before the Nth exec is delivered.
	CrashBeforeExec []int64
	// CrashAfterExec crashes the worker after the Nth exec's response.
	CrashAfterExec []int64
}

// ChaosTransport simulates kill -9 + restart of an in-process worker at
// scheduled exec boundaries: the loopback beneath it swaps to a freshly
// constructed Worker (new boot id, no session epoch, no resident matrices)
// and the old one is closed. Requires a wrapper chain terminating in a
// loopback (in-proc workers only).
type ChaosTransport struct {
	inner Transport
	lb    *loopback
	cfg   ChaosConfig

	mu      sync.Mutex
	execs   int64
	crashes int64
}

// NewChaosTransport wraps inner (which must unwrap to a loopback) with the
// crash schedule.
func NewChaosTransport(inner Transport, cfg ChaosConfig) (*ChaosTransport, error) {
	lb := loopbackOf(inner)
	if lb == nil {
		return nil, fmt.Errorf("shard: chaos transport requires an in-process loopback beneath it")
	}
	return &ChaosTransport{inner: inner, lb: lb, cfg: cfg}, nil
}

// Crashes returns how many scheduled crash/restarts fired.
func (t *ChaosTransport) Crashes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.crashes
}

// Execs returns how many non-recovery exec requests this transport saw.
func (t *ChaosTransport) Execs() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.execs
}

func (t *ChaosTransport) crash() error {
	fresh, err := NewWorker(t.cfg.Worker)
	if err != nil {
		return fmt.Errorf("shard: chaos restart: %w", err)
	}
	old := t.lb.swap(fresh)
	if old != nil {
		old.Close()
	}
	t.crashes++
	return nil
}

func scheduled(plan []int64, n int64) bool {
	for _, p := range plan {
		if p == n {
			return true
		}
	}
	return false
}

func (t *ChaosTransport) Call(ctx context.Context, op uint8, body []byte) ([]byte, error) {
	if op != opExec || isRecoveryCtx(ctx) {
		return t.inner.Call(ctx, op, body)
	}
	t.mu.Lock()
	t.execs++
	n := t.execs
	var cerr error
	if scheduled(t.cfg.CrashBeforeExec, n) {
		cerr = t.crash()
	}
	t.mu.Unlock()
	if cerr != nil {
		return nil, cerr
	}
	resp, err := t.inner.Call(ctx, op, body)
	t.mu.Lock()
	if scheduled(t.cfg.CrashAfterExec, n) {
		cerr = t.crash()
	}
	t.mu.Unlock()
	if cerr != nil {
		return nil, cerr
	}
	return resp, err
}

// Close closes the current worker behind the loopback — after a crash the
// coordinator's worker list still points at the pre-crash workers, so the
// last replacement is only reachable here.
func (t *ChaosTransport) Close() error {
	if w := t.lb.worker(); w != nil {
		w.Close()
	}
	return t.inner.Close()
}

// Unwrap exposes the wrapped transport.
func (t *ChaosTransport) Unwrap() Transport { return t.inner }
