package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultError marks an injected transport fault. It classifies as transient,
// so the coordinator's retry policy must absorb injected faults exactly as it
// absorbs real network ones.
type FaultError struct {
	Kind string
	Op   uint8
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("shard: injected %s fault on %s", e.Kind, opName(e.Op))
}

// FaultConfig drives the fault-injecting transport wrapper. All probabilities
// are per-Call, drawn from one seeded stream, so a test run is reproducible.
type FaultConfig struct {
	Seed int64
	// DropProb loses the request before delivery: the inner transport is
	// never called and the caller sees a transient error.
	DropProb float64
	// ResetProb delivers and EXECUTES the request but loses the response —
	// the mid-stream connection reset case. Retries then re-execute the op,
	// so this axis tests handler idempotency, not just retry plumbing.
	ResetProb float64
	// DupProb delivers the request twice back-to-back (a retransmit racing a
	// slow ack); the second response is returned.
	DupProb float64
	// DelayProb stalls the call by Delay before delivery (latency spike).
	DelayProb float64
	Delay     time.Duration
}

// FaultTransport wraps a Transport with seeded fault injection. Safe for
// concurrent Call (the RNG is mutex-guarded; concurrent schedules vary, but
// single-goroutine phases replay exactly).
type FaultTransport struct {
	inner Transport
	cfg   FaultConfig

	mu  sync.Mutex
	rng *rand.Rand

	drops, resets, dups, delays int64
}

// NewFaultTransport wraps inner with the given fault plan.
func NewFaultTransport(inner Transport, cfg FaultConfig) *FaultTransport {
	return &FaultTransport{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Injected returns how many faults of each kind fired.
func (t *FaultTransport) Injected() (drops, resets, dups, delays int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops, t.resets, t.dups, t.delays
}

func (t *FaultTransport) Call(ctx context.Context, op uint8, body []byte) ([]byte, error) {
	t.mu.Lock()
	delay := t.rng.Float64() < t.cfg.DelayProb
	drop := t.rng.Float64() < t.cfg.DropProb
	reset := t.rng.Float64() < t.cfg.ResetProb
	dup := t.rng.Float64() < t.cfg.DupProb
	switch {
	case delay:
		t.delays++
	}
	switch {
	case drop:
		t.drops++
	case reset:
		t.resets++
	case dup:
		t.dups++
	}
	t.mu.Unlock()
	if delay {
		select {
		case <-time.After(t.cfg.Delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if drop {
		return nil, &FaultError{Kind: "drop", Op: op}
	}
	if reset {
		// The worker sees and executes the request; the response is lost.
		t.inner.Call(ctx, op, body)
		return nil, &FaultError{Kind: "reset", Op: op}
	}
	if dup {
		if _, err := t.inner.Call(ctx, op, body); err != nil {
			return nil, err
		}
	}
	return t.inner.Call(ctx, op, body)
}

func (t *FaultTransport) Close() error { return t.inner.Close() }
