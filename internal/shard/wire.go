// Package shard is the multi-process execution engine: a coordinator that
// row-partitions named matrices across N workers — each running its own core
// engine (and, over TCP, its own SAFS array) — splits every captured
// post-rewrite DAG into per-shard passes, and combines the workers' raw sink
// partials in one aggregation exchange per pass. The transport is pluggable:
// an in-process loopback for deterministic tests and a length-prefixed TCP
// framing for real deployment, both speaking the same hand-rolled binary
// wire format below.
package shard

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
)

// protocolVersion gates coordinator/worker compatibility in the hello
// handshake; the wire format has no cross-version compatibility story beyond
// refusing to talk. Version 3 added session-epoch fencing: hello carries the
// coordinator's epoch, the response carries the worker's boot id, and every
// other request is prefixed with the (epoch, boot) fence.
const protocolVersion = 3

// RPC opcodes. Every op is idempotent: pushes and writes overwrite the same
// partition bytes, exec recomputes and re-registers the same handles, frees
// tolerate missing handles — so the retry/backoff layer and duplicate
// deliveries are always safe.
const (
	opHello     uint8 = 1
	opPushPart  uint8 = 2
	opExec      uint8 = 3
	opFetchPart uint8 = 4
	opWritePart uint8 = 5
	opFreeMat   uint8 = 6
)

func opName(op uint8) string {
	switch op {
	case opHello:
		return "hello"
	case opPushPart:
		return "pushpart"
	case opExec:
		return "exec"
	case opFetchPart:
		return "fetchpart"
	case opWritePart:
		return "writepart"
	case opFreeMat:
		return "freemat"
	default:
		return fmt.Sprintf("op(%d)", op)
	}
}

// maxWireSlice bounds decoded slice lengths: a corrupt or hostile frame must
// fail decoding, not allocate unboundedly.
const maxWireSlice = 1 << 28

// wbuf is the append-only wire encoder.
type wbuf struct {
	b []byte
}

func (w *wbuf) u8(v uint8)  { w.b = append(w.b, v) }
func (w *wbuf) bool(v bool) { w.u8(map[bool]uint8{false: 0, true: 1}[v]) }
func (w *wbuf) uvarint(v uint64) {
	w.b = binary.AppendUvarint(w.b, v)
}
func (w *wbuf) varint(v int64) {
	w.b = binary.AppendVarint(w.b, v)
}
func (w *wbuf) f64(v float64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(v))
}
func (w *wbuf) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}
func (w *wbuf) f64s(xs []float64) {
	w.uvarint(uint64(len(xs)))
	for _, v := range xs {
		w.f64(v)
	}
}
func (w *wbuf) i64s(xs []int64) {
	w.uvarint(uint64(len(xs)))
	for _, v := range xs {
		w.varint(v)
	}
}
func (w *wbuf) i32s(xs []int32) {
	w.uvarint(uint64(len(xs)))
	for _, v := range xs {
		w.varint(int64(v))
	}
}

// rbuf is the wire decoder; the first malformed field latches err and every
// later read returns zero values.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("shard: truncated or malformed %s at offset %d", what, r.off)
	}
}

func (r *rbuf) u8() uint8 {
	if r.err != nil || r.off >= len(r.b) {
		r.fail("byte")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) bool() bool { return r.u8() != 0 }

func (r *rbuf) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *rbuf) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

func (r *rbuf) f64() float64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *rbuf) sliceLen(what string) int {
	n := r.uvarint()
	if n > maxWireSlice {
		r.fail(what + " length")
		return 0
	}
	return int(n)
}

func (r *rbuf) str() string {
	n := r.sliceLen("string")
	if r.err != nil || r.off+n > len(r.b) {
		r.fail("string")
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *rbuf) f64s() []float64 {
	n := r.sliceLen("float64 slice")
	if r.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if r.off+8*n > len(r.b) {
		r.fail("float64 slice")
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *rbuf) i64s() []int64 {
	n := r.sliceLen("int64 slice")
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.varint()
	}
	return out
}

func (r *rbuf) i32s() []int32 {
	n := r.sliceLen("int32 slice")
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.varint())
	}
	return out
}

// --- message types ---

// helloReq opens (or re-opens) a session with a worker. Epoch is the
// coordinator's session epoch: a worker holding a different epoch frees all
// resident matrices and adopts the new one; a worker already holding it keeps
// its state (the recovery re-hello and the checkpoint-resume path).
type helloReq struct {
	Version  int
	PartRows int
	Epoch    uint64
}

// helloResp returns the worker's identity: Boot is the per-process random
// boot id (a restarted worker answers with a fresh one), Kept is how many
// matrices survived the epoch install (nonzero only when the epochs matched).
type helloResp struct {
	Version  int
	PartRows int
	Boot     uint64
	Kept     int64
}

func encodeHelloReq(h helloReq) []byte {
	var w wbuf
	w.varint(int64(h.Version))
	w.varint(int64(h.PartRows))
	w.uvarint(h.Epoch)
	return w.b
}

func decodeHelloReq(b []byte) (helloReq, error) {
	r := rbuf{b: b}
	h := helloReq{Version: int(r.varint()), PartRows: int(r.varint()), Epoch: r.uvarint()}
	return h, r.err
}

func encodeHelloResp(h helloResp) []byte {
	var w wbuf
	w.varint(int64(h.Version))
	w.varint(int64(h.PartRows))
	w.uvarint(h.Boot)
	w.varint(h.Kept)
	return w.b
}

func decodeHelloResp(b []byte) (helloResp, error) {
	r := rbuf{b: b}
	h := helloResp{Version: int(r.varint()), PartRows: int(r.varint()),
		Boot: r.uvarint(), Kept: r.varint()}
	return h, r.err
}

// fenceBody prefixes a non-hello request body with the (epoch, boot) fence.
// The worker rejects any request whose fence does not name its current epoch
// and its own boot id, so a restarted worker (fresh boot, no epoch) and a
// stale coordinator (old epoch) both fail typed instead of touching state.
func fenceBody(epoch, boot uint64, body []byte) []byte {
	var w wbuf
	w.uvarint(epoch)
	w.uvarint(boot)
	w.b = append(w.b, body...)
	return w.b
}

// splitFence strips and returns the fence prefix of a request body.
func splitFence(body []byte) (epoch, boot uint64, rest []byte, err error) {
	r := rbuf{b: body}
	epoch = r.uvarint()
	boot = r.uvarint()
	if r.err != nil {
		return 0, 0, nil, r.err
	}
	return epoch, boot, body[r.off:], nil
}

// partReq carries one partition of matrix data (opPushPart creates the
// worker-resident matrix on first touch; opWritePart requires it to exist and
// bumps its content version).
type partReq struct {
	Handle string
	NRow   int64 // worker-local rows for the whole handle
	NCol   int
	DT     uint8
	Part   int
	Data   []float64
}

func encodePartReq(q partReq) []byte {
	var w wbuf
	w.str(q.Handle)
	w.varint(q.NRow)
	w.varint(int64(q.NCol))
	w.u8(q.DT)
	w.varint(int64(q.Part))
	w.f64s(q.Data)
	return w.b
}

func decodePartReq(b []byte) (partReq, error) {
	r := rbuf{b: b}
	q := partReq{
		Handle: r.str(),
		NRow:   r.varint(),
		NCol:   int(r.varint()),
		DT:     r.u8(),
		Part:   int(r.varint()),
		Data:   r.f64s(),
	}
	return q, r.err
}

type fetchReq struct {
	Handle string
	Part   int
}

func encodeFetchReq(q fetchReq) []byte {
	var w wbuf
	w.str(q.Handle)
	w.varint(int64(q.Part))
	return w.b
}

func decodeFetchReq(b []byte) (fetchReq, error) {
	r := rbuf{b: b}
	q := fetchReq{Handle: r.str(), Part: int(r.varint())}
	return q, r.err
}

// execRequest ships one shard's slice of a pass: the shared program, the
// shard's row count, the carry entering each cum.col node (absent on the
// first shard), the keep handle per tall target (aligned with Prog.Talls —
// two tall positions may share a node index when the plan unified them, and
// each still gets its own handle), and which nodes to report exit carries
// for.
type execRequest struct {
	Owner    string
	Rows     int64
	Prog     *core.Program
	Carries  map[int32][]float64
	Keeps    []string
	CarryOut []int32
}

// workerPassStats is the worker-side observability subset returned per exec.
type workerPassStats struct {
	Passes        int64
	Parts         int64
	Chunks        int64
	BytesRead     int64
	BytesWritten  int64
	NodesExecuted int64
	Wall          time.Duration
}

type execResponse struct {
	Partials []*core.SinkPartial
	Carries  map[int32][]float64
	Stats    workerPassStats
}

func encodeProgram(w *wbuf, p *core.Program) {
	w.uvarint(uint64(len(p.Nodes)))
	for _, n := range p.Nodes {
		w.u8(n.Op)
		w.varint(int64(n.A))
		w.varint(int64(n.B))
		w.u8(n.DT)
		w.varint(int64(n.NCol))
		w.str(n.Un)
		w.str(n.Bin)
		w.str(n.Agg)
		w.u8(n.Arg)
		w.f64(n.Scalar)
		w.bool(n.ScalarLeft)
		w.f64s(n.Vec)
		w.bool(n.VecLeft)
		w.varint(int64(n.SmallR))
		w.varint(int64(n.SmallC))
		w.f64s(n.Small)
		w.str(n.F1)
		w.str(n.F2)
		w.i32s(n.Cols)
		w.i32s(n.Labels)
		w.varint(int64(n.GroupK))
		w.str(n.Leaf)
		w.f64(n.Const)
	}
	w.i32s(p.Talls)
	w.uvarint(uint64(len(p.Sinks)))
	for _, s := range p.Sinks {
		w.u8(s.Kind)
		w.varint(int64(s.A))
		w.varint(int64(s.B))
		w.str(s.Agg)
		w.str(s.F1)
		w.str(s.F2)
		w.varint(int64(s.K))
	}
	w.i32s(p.Cums)
}

func decodeProgram(r *rbuf) *core.Program {
	p := &core.Program{}
	n := r.sliceLen("program nodes")
	for i := 0; i < n && r.err == nil; i++ {
		pn := core.ProgramNode{
			Op:         r.u8(),
			A:          int32(r.varint()),
			B:          int32(r.varint()),
			DT:         r.u8(),
			NCol:       int32(r.varint()),
			Un:         r.str(),
			Bin:        r.str(),
			Agg:        r.str(),
			Arg:        r.u8(),
			Scalar:     r.f64(),
			ScalarLeft: r.bool(),
			Vec:        r.f64s(),
			VecLeft:    r.bool(),
			SmallR:     int32(r.varint()),
			SmallC:     int32(r.varint()),
			Small:      r.f64s(),
			F1:         r.str(),
			F2:         r.str(),
			Cols:       r.i32s(),
			Labels:     r.i32s(),
			GroupK:     int32(r.varint()),
			Leaf:       r.str(),
			Const:      r.f64(),
		}
		p.Nodes = append(p.Nodes, pn)
	}
	p.Talls = r.i32s()
	ns := r.sliceLen("program sinks")
	for i := 0; i < ns && r.err == nil; i++ {
		p.Sinks = append(p.Sinks, core.ProgramSink{
			Kind: r.u8(),
			A:    int32(r.varint()),
			B:    int32(r.varint()),
			Agg:  r.str(),
			F1:   r.str(),
			F2:   r.str(),
			K:    int32(r.varint()),
		})
	}
	p.Cums = r.i32s()
	return p
}

func encodeCarryMap(w *wbuf, m map[int32][]float64, order []int32) {
	w.uvarint(uint64(len(m)))
	for _, idx := range order {
		if vs, ok := m[idx]; ok {
			w.varint(int64(idx))
			w.f64s(vs)
		}
	}
}

func decodeCarryMap(r *rbuf) map[int32][]float64 {
	n := r.sliceLen("carry map")
	if n == 0 {
		return nil
	}
	m := make(map[int32][]float64, n)
	for i := 0; i < n && r.err == nil; i++ {
		idx := int32(r.varint())
		m[idx] = r.f64s()
	}
	return m
}

func encodeExecReq(q execRequest) []byte {
	var w wbuf
	w.str(q.Owner)
	w.varint(q.Rows)
	encodeProgram(&w, q.Prog)
	// Order by the map's own keys, not CarryOut: replay requests carry entry
	// carries without requesting any carry-out.
	order := make([]int32, 0, len(q.Carries))
	for idx := range q.Carries {
		order = append(order, idx)
	}
	sortInt32s(order)
	encodeCarryMap(&w, q.Carries, order)
	w.uvarint(uint64(len(q.Keeps)))
	for _, h := range q.Keeps {
		w.str(h)
	}
	w.i32s(q.CarryOut)
	return w.b
}

func decodeExecReq(b []byte) (execRequest, error) {
	r := rbuf{b: b}
	q := execRequest{Owner: r.str(), Rows: r.varint()}
	q.Prog = decodeProgram(&r)
	q.Carries = decodeCarryMap(&r)
	nk := r.sliceLen("keep list")
	for i := 0; i < nk && r.err == nil; i++ {
		q.Keeps = append(q.Keeps, r.str())
	}
	q.CarryOut = r.i32s()
	return q, r.err
}

func encodePartial(w *wbuf, p *core.SinkPartial) {
	w.bool(p.Used)
	w.varint(int64(p.R))
	w.varint(int64(p.C))
	w.f64s(p.Data)
	w.f64s(p.Keys)
	w.i64s(p.Counts)
	w.f64s(p.Folds)
}

func decodePartial(r *rbuf) *core.SinkPartial {
	return &core.SinkPartial{
		Used:   r.bool(),
		R:      int(r.varint()),
		C:      int(r.varint()),
		Data:   r.f64s(),
		Keys:   r.f64s(),
		Counts: r.i64s(),
		Folds:  r.f64s(),
	}
}

func encodeExecResp(q execResponse) []byte {
	var w wbuf
	w.uvarint(uint64(len(q.Partials)))
	for _, p := range q.Partials {
		encodePartial(&w, p)
	}
	order := make([]int32, 0, len(q.Carries))
	for idx := range q.Carries {
		order = append(order, idx)
	}
	sortInt32s(order)
	encodeCarryMap(&w, q.Carries, order)
	w.varint(q.Stats.Passes)
	w.varint(q.Stats.Parts)
	w.varint(q.Stats.Chunks)
	w.varint(q.Stats.BytesRead)
	w.varint(q.Stats.BytesWritten)
	w.varint(q.Stats.NodesExecuted)
	w.varint(int64(q.Stats.Wall))
	return w.b
}

func decodeExecResp(b []byte) (execResponse, error) {
	r := rbuf{b: b}
	var q execResponse
	np := r.sliceLen("partials")
	for i := 0; i < np && r.err == nil; i++ {
		q.Partials = append(q.Partials, decodePartial(&r))
	}
	q.Carries = decodeCarryMap(&r)
	q.Stats = workerPassStats{
		Passes:        r.varint(),
		Parts:         r.varint(),
		Chunks:        r.varint(),
		BytesRead:     r.varint(),
		BytesWritten:  r.varint(),
		NodesExecuted: r.varint(),
		Wall:          time.Duration(r.varint()),
	}
	return q, r.err
}

func sortInt32s(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
