package shard

import (
	"fmt"
	"os"
	"path/filepath"
)

// The checkpoint sidecar persists the coordinator's session identity (epoch),
// its pushed-leaf registry, and the keep-lineage table, so a coordinator
// process restart can resume against live workers: same epoch → workers keep
// their resident matrices, restored lineage → kept talls stay replayable
// after a later worker restart. Registry entries are only re-bindable to
// local matrices inside the process that wrote them (matrix IDs and content
// versions are process-local), so a cross-process load keeps their handles
// only as an "inherited" set: usable as lineage inputs while the workers
// holding them stay up, not re-pushable.

const checkpointMagic = "FRCP"
const checkpointVersion = 1

// checkpointEntry is one pushed-leaf registry row.
type checkpointEntry struct {
	id     uint64
	ver    uint64
	handle string
}

type checkpoint struct {
	procNonce uint64
	epoch     uint64
	shards    int
	partRows  int
	passSeq   int64
	registry  []checkpointEntry
	linSeq    int64
	recs      []*lineageRec
}

func encodeCheckpoint(ck *checkpoint) []byte {
	var w wbuf
	w.b = append(w.b, checkpointMagic...)
	w.uvarint(checkpointVersion)
	w.uvarint(ck.procNonce)
	w.uvarint(ck.epoch)
	w.varint(int64(ck.shards))
	w.varint(int64(ck.partRows))
	w.varint(ck.passSeq)
	w.uvarint(uint64(len(ck.registry)))
	for _, e := range ck.registry {
		w.uvarint(e.id)
		w.uvarint(e.ver)
		w.str(e.handle)
	}
	w.varint(ck.linSeq)
	w.uvarint(uint64(len(ck.recs)))
	for _, r := range ck.recs {
		w.varint(r.seq)
		w.varint(r.nrow)
		encodeProgram(&w, r.prog)
		w.uvarint(uint64(len(r.keeps)))
		for _, k := range r.keeps {
			w.str(k)
		}
		w.uvarint(uint64(len(r.done)))
		for wi := range r.done {
			w.bool(r.done[wi])
			m := r.carriesIn[wi]
			order := make([]int32, 0, len(m))
			for idx := range m {
				order = append(order, idx)
			}
			sortInt32s(order)
			encodeCarryMap(&w, m, order)
		}
		w.uvarint(uint64(len(r.live)))
		for _, v := range r.live {
			w.bool(v)
		}
		w.bool(r.final)
	}
	return w.b
}

func decodeCheckpoint(b []byte) (*checkpoint, error) {
	if len(b) < len(checkpointMagic) || string(b[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("shard: checkpoint: bad magic")
	}
	r := rbuf{b: b, off: len(checkpointMagic)}
	if v := r.uvarint(); v != checkpointVersion {
		return nil, fmt.Errorf("shard: checkpoint: version %d, want %d", v, checkpointVersion)
	}
	ck := &checkpoint{
		procNonce: r.uvarint(),
		epoch:     r.uvarint(),
		shards:    int(r.varint()),
		partRows:  int(r.varint()),
		passSeq:   r.varint(),
	}
	nreg := r.sliceLen("checkpoint registry")
	for i := 0; i < nreg && r.err == nil; i++ {
		ck.registry = append(ck.registry, checkpointEntry{
			id: r.uvarint(), ver: r.uvarint(), handle: r.str(),
		})
	}
	ck.linSeq = r.varint()
	nrec := r.sliceLen("checkpoint lineage")
	for i := 0; i < nrec && r.err == nil; i++ {
		rec := &lineageRec{seq: r.varint(), nrow: r.varint(), prog: decodeProgram(&r)}
		nk := r.sliceLen("checkpoint keeps")
		for j := 0; j < nk && r.err == nil; j++ {
			rec.keeps = append(rec.keeps, r.str())
		}
		nw := r.sliceLen("checkpoint workers")
		for wi := 0; wi < nw && r.err == nil; wi++ {
			rec.done = append(rec.done, r.bool())
			rec.carriesIn = append(rec.carriesIn, decodeCarryMap(&r))
		}
		nl := r.sliceLen("checkpoint live")
		for j := 0; j < nl && r.err == nil; j++ {
			rec.live = append(rec.live, r.bool())
		}
		rec.final = r.bool()
		if rec.prog != nil {
			rec.leafRefs = leafRefsOf(rec.prog)
		}
		ck.recs = append(ck.recs, rec)
	}
	if r.err != nil {
		return nil, fmt.Errorf("shard: checkpoint: %w", r.err)
	}
	return ck, nil
}

// writeCheckpoint persists atomically (temp file + rename in the sidecar's
// directory).
func writeCheckpoint(path string, ck *checkpoint) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ck-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(encodeCheckpoint(ck)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// readCheckpoint loads the sidecar; a missing file is (nil, nil).
func readCheckpoint(path string) (*checkpoint, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return decodeCheckpoint(b)
}
