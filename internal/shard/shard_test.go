package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/matrix"
)

const (
	testPartRows = 64
	testNRow     = 300 // 5 partitions of 64: shard0 gets 3, shard1 gets 2
	testNCol     = 3
)

func testConfig() core.Config {
	return core.Config{Workers: 2, PartRows: testPartRows}
}

// fillInt is a partition-independent integer-valued fill: exact under any
// regrouping of the shard combine, so results must be bit-identical.
func fillInt(part int, startRow int64, rows int, buf []float64) {
	for r := 0; r < rows; r++ {
		g := startRow + int64(r)
		for c := 0; c < testNCol; c++ {
			buf[r*testNCol+c] = float64((g*7+int64(c)*3)%11) - 5
		}
	}
}

// fillFrac has non-terminating binary fractions — used only where bitwise
// equality is still guaranteed (carry-seeded cumulative folds).
func fillFrac(part int, startRow int64, rows int, buf []float64) {
	for r := 0; r < rows; r++ {
		g := startRow + int64(r)
		for c := 0; c < testNCol; c++ {
			buf[r*testNCol+c] = math.Sin(float64(g)*1.7 + float64(c))
		}
	}
}

func newShardedEngine(t *testing.T, shards int, wrap func(int, Transport) Transport) (*core.Engine, *Coordinator) {
	t.Helper()
	eng, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(Config{Shards: shards, WrapTransport: wrap,
		Retries: 8, RetryBackoff: time.Millisecond}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	eng.SetRemoteExecutor(coord)
	return eng, coord
}

func sameDense(t *testing.T, what string, a, b *dense.Dense) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("%s: nil result (local %v, shard %v)", what, a != nil, b != nil)
	}
	if a.R != b.R || a.C != b.C {
		t.Fatalf("%s: local %dx%d, shard %dx%d", what, a.R, a.C, b.R, b.C)
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			t.Fatalf("%s: element %d local %v shard %v", what, i, a.Data[i], b.Data[i])
		}
	}
}

// runWorkload builds one DAG covering every sink kind plus tall and
// cumulative targets, materializes it, and returns all results.
func runWorkload(t *testing.T, eng *core.Engine, ctx context.Context) map[string]*dense.Dense {
	t.Helper()
	leaf, err := eng.Generate(testNRow, testNCol, matrix.F64, fillInt)
	if err != nil {
		t.Fatal(err)
	}
	plus := mustAgg(t, "+")
	maxf := mustAgg(t, "max")
	square := mustUnary(t, "square")

	sap := core.Sapply(leaf, square)
	cum := core.CumCol(leaf, plus)
	col0 := core.Cols(leaf, []int{0})
	sum := core.Agg(leaf, plus)
	colMax := core.AggCol(leaf, maxf)
	xp := core.CrossProd(leaf, leaf, nil, nil) // same object: Syrk kernel
	tbl := core.Table(col0)
	gbv := core.GroupByVal(col0, plus)
	talls := []*core.Mat{sap, cum}
	sinks := []*core.Sink{sum, colMax, xp, tbl, gbv}
	if err := eng.MaterializeCtx(ctx, talls, sinks); err != nil {
		t.Fatal(err)
	}
	out := map[string]*dense.Dense{
		"sum": sum.Result(), "colmax": colMax.Result(), "crossprod": xp.Result(),
		"table": tbl.Result(), "groupby": gbv.Result(),
	}
	for name, m := range map[string]*core.Mat{"sapply": sap, "cumsum": cum} {
		d, derr := eng.ToDense(m)
		if derr != nil {
			t.Fatalf("%s: %v", name, derr)
		}
		out[name] = d
	}
	// Second pass over the materialized cumulative column: on the sharded
	// path this input is a worker-resident RemoteStore, exercising the
	// reference (no re-push) leaf path.
	sum2 := core.Agg(cum, plus)
	if err := eng.MaterializeCtx(ctx, nil, []*core.Sink{sum2}); err != nil {
		t.Fatal(err)
	}
	out["sum2"] = sum2.Result()
	return out
}

func mustAgg(t *testing.T, name string) *core.AggFunc {
	t.Helper()
	f, err := core.LookupAgg(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustUnary(t *testing.T, name string) *core.Unary {
	t.Helper()
	f, err := core.LookupUnary(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestShardEquivalence runs the full workload single-engine and across 2 and
// 4 in-process shards; every channel must be bit-identical.
func TestShardEquivalence(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	local, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := runWorkload(t, local, ctx)
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			eng, coord := newShardedEngine(t, shards, nil)
			got := runWorkload(t, eng, ctx)
			for name, w := range want {
				sameDense(t, name, w, got[name])
			}
			if coord.AggRounds() == 0 {
				t.Fatal("no aggregation rounds recorded")
			}
			sent, recv, _ := coord.Totals()
			if sent == 0 || recv == 0 {
				t.Fatalf("wire totals sent=%d recv=%d, want both nonzero", sent, recv)
			}
			ms := eng.TotalMaterializeStats()
			if ms.ShardPasses == 0 || ms.ShardAggRounds == 0 {
				t.Fatalf("stats not threaded: %+v", ms)
			}
			if ms.BytesRead != 0 {
				t.Fatalf("remote pass attributed %d local read bytes; worker I/O must stay in ShardWorkerRead", ms.BytesRead)
			}
			// In-memory worker stores read leaves zero-copy, so assert on
			// written tall-output bytes, which are always counted.
			if ms.ShardWorkerWritten == 0 {
				t.Fatal("worker written bytes not reported")
			}
		})
	}
}

// TestShardCumCarryBitIdentical checks the carry-seeded sequential path on
// data with non-terminating fractions: cumulative sums must still match the
// single-engine result bitwise, because shard s+1 continues from shard s's
// exact accumulator rather than re-summing.
func TestShardCumCarryBitIdentical(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	run := func(eng *core.Engine) *dense.Dense {
		leaf, err := eng.Generate(testNRow, testNCol, matrix.F64, fillFrac)
		if err != nil {
			t.Fatal(err)
		}
		cum := core.CumCol(leaf, mustAgg(t, "+"))
		if err := eng.MaterializeCtx(ctx, []*core.Mat{cum}, nil); err != nil {
			t.Fatal(err)
		}
		d, err := eng.ToDense(cum)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	local, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := run(local)
	for _, shards := range []int{2, 3} {
		eng, _ := newShardedEngine(t, shards, nil)
		sameDense(t, fmt.Sprintf("cumsum shards=%d", shards), want, run(eng))
	}
}

// TestShardTallWorkerResident checks that tall results stay on the workers: a
// materialized target's store is the coordinator's RemoteStore, and a second
// pass consuming it pushes no fresh leaf data.
func TestShardTallWorkerResident(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	eng, coord := newShardedEngine(t, 2, nil)
	leaf, err := eng.Generate(testNRow, testNCol, matrix.F64, fillInt)
	if err != nil {
		t.Fatal(err)
	}
	plus := mustAgg(t, "+")
	tall := core.Sapply(leaf, mustUnary(t, "square"))
	if err := eng.MaterializeCtx(ctx, []*core.Mat{tall}, nil); err != nil {
		t.Fatal(err)
	}
	rs, ok := core.UnwrapStore(tall.Store()).(*RemoteStore)
	if !ok {
		t.Fatalf("tall store is %T (%s), want *RemoteStore", tall.Store(), tall.Store().Kind())
	}
	sentBefore, _, _ := coord.Totals()
	sum := core.Agg(tall, plus)
	if err := eng.MaterializeCtx(ctx, nil, []*core.Sink{sum}); err != nil {
		t.Fatal(err)
	}
	sentAfter, _, _ := coord.Totals()
	// The second pass references the resident handle: traffic is just the
	// program + partials, far below one partition of leaf data.
	if delta := sentAfter - sentBefore; delta > int64(testPartRows*testNCol*8/2) {
		t.Fatalf("second pass sent %d bytes; tall was not worker-resident (handle %s)", delta, rs.Handle())
	}
	// Cross-check the result against a local compute of sum(square(x)).
	var want float64
	buf := make([]float64, testPartRows*testNCol)
	for p := 0; p < matrix.NumParts(testNRow, testPartRows); p++ {
		rows := matrix.PartRowsOf(testNRow, testPartRows, p)
		fillInt(p, int64(p)*testPartRows, rows, buf)
		for _, v := range buf[:rows*testNCol] {
			want += v * v
		}
	}
	if got := sum.Result().Data[0]; got != want {
		t.Fatalf("sum(square) = %v, want %v", got, want)
	}
}

// TestShardFaultRecovery drives the full workload through transports
// injecting seeded drops, duplicate deliveries, latency spikes, and
// mid-stream resets (request executed, response lost). With a retry budget
// the coordinator must complete with bit-identical results — resets in
// particular prove every op is idempotent.
func TestShardFaultRecovery(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	local, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := runWorkload(t, local, ctx)
	cases := []struct {
		name string
		cfg  FaultConfig
	}{
		{"drops", FaultConfig{Seed: 1, DropProb: 0.3}},
		{"dups", FaultConfig{Seed: 2, DupProb: 0.4}},
		{"resets", FaultConfig{Seed: 3, ResetProb: 0.3}},
		{"latency", FaultConfig{Seed: 4, DelayProb: 0.5, Delay: 2 * time.Millisecond}},
		{"mixed", FaultConfig{Seed: 5, DropProb: 0.15, DupProb: 0.15, ResetProb: 0.15, DelayProb: 0.2, Delay: time.Millisecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var fts []*FaultTransport
			eng, _ := newShardedEngine(t, 2, func(i int, tr Transport) Transport {
				ft := NewFaultTransport(tr, FaultConfig{Seed: tc.cfg.Seed + int64(i),
					DropProb: tc.cfg.DropProb, ResetProb: tc.cfg.ResetProb,
					DupProb: tc.cfg.DupProb, DelayProb: tc.cfg.DelayProb, Delay: tc.cfg.Delay})
				fts = append(fts, ft)
				return ft
			})
			got := runWorkload(t, eng, ctx)
			for name, w := range want {
				sameDense(t, name, w, got[name])
			}
			var fired int64
			for _, ft := range fts {
				d, r, du, de := ft.Injected()
				fired += d + r + du + de
			}
			if fired == 0 {
				t.Fatal("fault plan injected nothing; the test proved nothing")
			}
		})
	}
}

// TestShardFaultSurfacesTypedError checks the no-retry path: a permanently
// dropping transport must surface a *ShardError naming the worker and op —
// never a hang, never a silently partial result.
func TestShardFaultSurfacesTypedError(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	eng, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Hello must pass, so faults start only after construction.
	armed := false
	coord, err := NewCoordinator(Config{Shards: 2, Retries: -1,
		WrapTransport: func(i int, tr Transport) Transport {
			if i != 1 {
				return tr
			}
			return transportFunc{call: func(ctx context.Context, op uint8, body []byte) ([]byte, error) {
				if armed {
					return nil, &FaultError{Kind: "drop", Op: op}
				}
				return tr.Call(ctx, op, body)
			}, close: tr.Close}
		}}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	eng.SetRemoteExecutor(coord)
	armed = true

	leaf, err := eng.Generate(testNRow, testNCol, matrix.F64, fillInt)
	if err != nil {
		t.Fatal(err)
	}
	sum := core.Agg(leaf, mustAgg(t, "+"))
	merr := eng.MaterializeCtx(ctx, nil, []*core.Sink{sum})
	if merr == nil {
		t.Fatal("materialize succeeded through a dead worker")
	}
	var se *ShardError
	if !errors.As(merr, &se) {
		t.Fatalf("error %v (%T) is not a *ShardError", merr, merr)
	}
	if se.Worker != 1 {
		t.Fatalf("ShardError names worker %d, want 1", se.Worker)
	}
	if sum.Done() {
		t.Fatal("sink published a partial aggregate after a failed pass")
	}
	var fe *FaultError
	if !errors.As(merr, &fe) {
		t.Fatalf("ShardError does not unwrap to the injected fault: %v", merr)
	}
}

type transportFunc struct {
	call  func(ctx context.Context, op uint8, body []byte) ([]byte, error)
	close func() error
}

func (t transportFunc) Call(ctx context.Context, op uint8, body []byte) ([]byte, error) {
	return t.call(ctx, op, body)
}
func (t transportFunc) Close() error { return t.close() }

// TestShardTCPTransport runs the workload over real localhost TCP servers.
func TestShardTCPTransport(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var addrs []string
	var servers []*Server
	for i := 0; i < 2; i++ {
		w, err := NewWorker(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer("127.0.0.1:0", w)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		defer w.Close()
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	local, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := runWorkload(t, local, ctx)
	eng, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(Config{Addrs: addrs}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetRemoteExecutor(coord)
	got := runWorkload(t, eng, ctx)
	for name, w := range want {
		sameDense(t, name, w, got[name])
	}
	coord.Close()
	for i, srv := range servers {
		srv.Drain()
		if srv.Accepted() != srv.Answered() {
			t.Fatalf("server %d drained dirty: accepted %d answered %d", i, srv.Accepted(), srv.Answered())
		}
	}
}

// TestSplitParts pins the deterministic shard split.
func TestSplitParts(t *testing.T) {
	sh := splitParts(300, 64, 2)
	wantParts := [][2]int{{0, 3}, {3, 2}}
	wantRows := []int64{192, 108}
	for i := range sh {
		if sh[i].part0 != wantParts[i][0] || sh[i].nparts != wantParts[i][1] || sh[i].rows != wantRows[i] {
			t.Fatalf("shard %d = %+v, want part0=%d nparts=%d rows=%d",
				i, sh[i], wantParts[i][0], wantParts[i][1], wantRows[i])
		}
	}
	// More shards than partitions: trailing shards are empty, never negative.
	for _, sr := range splitParts(100, 64, 4) {
		if sr.nparts < 0 || sr.rows < 0 {
			t.Fatalf("negative shard range %+v", sr)
		}
	}
}

// TestWireExecRoundTrip pins the exec request/response codec.
func TestWireExecRoundTrip(t *testing.T) {
	prog := &core.Program{
		Nodes: []core.ProgramNode{
			{Op: 1, A: -1, B: -1, DT: 1, NCol: 3, Leaf: "m1-v0"},
			{Op: 4, A: 0, B: -1, DT: 1, NCol: 3, Un: "square", Vec: []float64{1.5, -2, 3}},
		},
		Talls: []int32{1},
		Sinks: []core.ProgramSink{{Kind: 2, A: 1, B: -1, Agg: "+", K: 4}},
		Cums:  []int32{1},
	}
	req := execRequest{
		Owner:    "tester",
		Rows:     192,
		Prog:     prog,
		Carries:  map[int32][]float64{1: {0.5, 1.5, 2.5}},
		Keeps:    []string{"t7-0"},
		CarryOut: []int32{1},
	}
	dec, err := decodeExecReq(encodeExecReq(req))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Owner != req.Owner || dec.Rows != req.Rows || len(dec.Prog.Nodes) != 2 ||
		dec.Prog.Nodes[1].Un != "square" || len(dec.Keeps) != 1 || dec.Keeps[0] != "t7-0" ||
		len(dec.Carries[1]) != 3 || dec.Carries[1][2] != 2.5 {
		t.Fatalf("exec request did not round-trip: %+v", dec)
	}
	resp := execResponse{
		Partials: []*core.SinkPartial{{Used: true, R: 1, C: 3, Data: []float64{1, 2, 3},
			Keys: []float64{-1, 4}, Counts: []int64{10, 20}, Folds: []float64{0.25}}},
		Carries: map[int32][]float64{1: {9, 8, 7}},
		Stats:   workerPassStats{Passes: 1, Parts: 3, BytesRead: 4096, Wall: time.Second},
	}
	rdec, err := decodeExecResp(encodeExecResp(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !rdec.Partials[0].Used || rdec.Partials[0].Data[2] != 3 || rdec.Partials[0].Counts[1] != 20 ||
		rdec.Carries[1][0] != 9 || rdec.Stats.Wall != time.Second {
		t.Fatalf("exec response did not round-trip: %+v", rdec)
	}
	// Truncated frames must fail decoding, not panic or misparse.
	full := encodeExecResp(resp)
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := decodeExecResp(full[:cut]); err == nil && cut < len(full)-1 {
			// Some prefixes are self-consistent (trailing zero-value stats);
			// only a decode that invents partials is a failure.
			if r2, _ := decodeExecResp(full[:cut]); len(r2.Partials) > len(resp.Partials) {
				t.Fatalf("truncated frame at %d decoded extra partials", cut)
			}
		}
	}
}

// TestShardHelloRejectsMismatch pins the handshake: a worker with a different
// partition height must be refused at construction.
func TestShardHelloRejectsMismatch(t *testing.T) {
	w, err := NewWorker(core.Config{Workers: 1, PartRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	srv, err := NewServer("127.0.0.1:0", w)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, err = NewCoordinator(Config{Addrs: []string{srv.Addr()}}, testConfig())
	if err == nil {
		t.Fatal("coordinator accepted a worker with mismatched part-rows")
	}
}

// TestWorkerAliasedHandles pins the registry's aliasing semantics: when the
// plan unifies two tall targets onto one computation, the worker registers
// the same matrix under two handles, and freeing one must not pull the data
// out from under the other.
func TestWorkerAliasedHandles(t *testing.T) {
	w, err := NewWorker(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rows := int64(testPartRows)
	data := make([]float64, rows*int64(testNCol))
	for i := range data {
		data[i] = float64(i%13) - 6
	}
	// Direct Handle calls must open a session and fence like any transport.
	hello := encodeHelloReq(helloReq{Version: protocolVersion, PartRows: testPartRows, Epoch: 7})
	if _, err := w.Handle(context.Background(), opHello, hello); err != nil {
		t.Fatal(err)
	}
	req := partReq{Handle: "m1", NRow: rows, NCol: testNCol, DT: uint8(matrix.F64), Part: 0, Data: data}
	if _, err := w.Handle(context.Background(), opPushPart, fenceBody(7, w.Boot(), encodePartReq(req))); err != nil {
		t.Fatal(err)
	}
	m, err := w.lookup("m1")
	if err != nil {
		t.Fatal(err)
	}
	w.register("alias", m)
	w.freeMat("m1")
	got, err := w.fetchPart(fetchReq{Handle: "alias", Part: 0})
	if err != nil {
		t.Fatalf("fetch through surviving alias: %v", err)
	}
	for i := range data {
		if math.Float64bits(got[i]) != math.Float64bits(data[i]) {
			t.Fatalf("alias data diverged at %d: %v != %v", i, got[i], data[i])
		}
	}
	// Re-registering a handle over an aliased occupant must not free it
	// either.
	st, err := w.eng.NewStore(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	other := core.NewLeaf(st, matrix.F64)
	w.register("alias2", m)
	w.register("alias", other)
	if _, err := w.fetchPart(fetchReq{Handle: "alias2", Part: 0}); err != nil {
		t.Fatalf("fetch after re-register over alias: %v", err)
	}
	w.freeMat("alias2")
}
