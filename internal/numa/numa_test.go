package numa

import (
	"sync"
	"testing"
)

func TestTopologyBasics(t *testing.T) {
	topo := NewTopology(4, 1<<12)
	if topo.Nodes() != 4 {
		t.Fatalf("nodes=%d", topo.Nodes())
	}
	if topo.ChunkFloats() != 512 {
		t.Fatalf("chunk floats=%d", topo.ChunkFloats())
	}
	// Partition mapping is round-robin and stable.
	for p := 0; p < 16; p++ {
		if topo.NodeOfPart(p) != p%4 {
			t.Fatalf("NodeOfPart(%d)=%d", p, topo.NodeOfPart(p))
		}
	}
	// Worker affinity spreads workers over nodes.
	seen := map[int]bool{}
	for w := 0; w < 8; w++ {
		n := topo.NodeOfWorker(w, 8)
		if n < 0 || n >= 4 {
			t.Fatalf("worker %d on node %d", w, n)
		}
		seen[n] = true
	}
	if len(seen) != 4 {
		t.Fatalf("workers cover %d nodes, want 4", len(seen))
	}
}

func TestChunkRecycling(t *testing.T) {
	topo := NewTopology(2, 1<<12)
	a := topo.Alloc(0)
	b := topo.Alloc(0)
	if len(a) != topo.ChunkFloats() || len(b) != topo.ChunkFloats() {
		t.Fatal("wrong chunk size")
	}
	topo.Release(0, a)
	c := topo.Alloc(0)
	if &c[0] != &a[0] {
		t.Fatal("released chunk not recycled")
	}
	idle, minted := topo.PoolStats()
	if idle[0] != 0 || minted[0] != 2 {
		t.Fatalf("idle=%v minted=%v", idle, minted)
	}
}

func TestReleaseWrongSizePanics(t *testing.T) {
	topo := NewTopology(1, 1<<12)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong-size release")
		}
	}()
	topo.Release(0, make([]float64, 7))
}

func TestAccessAccounting(t *testing.T) {
	topo := NewTopology(2, 1<<12)
	topo.RecordAccess(0, 0)
	topo.RecordAccess(0, 1)
	topo.RecordAccess(1, 1)
	local, remote := topo.Stats()
	if local != 2 || remote != 1 {
		t.Fatalf("local=%d remote=%d", local, remote)
	}
	topo.ResetStats()
	if l, r := topo.Stats(); l != 0 || r != 0 {
		t.Fatal("reset failed")
	}
}

func TestConcurrentAllocRelease(t *testing.T) {
	topo := NewTopology(4, 1<<10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := w % 4
			for i := 0; i < 200; i++ {
				c := topo.Alloc(node)
				c[0] = float64(i)
				topo.Release(node, c)
			}
		}(w)
	}
	wg.Wait()
}

func TestInvalidChunkSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unaligned chunk size")
		}
	}()
	NewTopology(1, 1001)
}
