// Package numa simulates a non-uniform memory access (NUMA) topology for the
// FlashR execution engine.
//
// The paper runs on a four-socket machine and is careful to (i) allocate the
// I/O partitions of every in-memory matrix in fixed-size chunks spread across
// NUMA nodes, (ii) assign partition i of every matrix in a DAG to the same
// node, and (iii) bind each worker thread to a node so that the partitions it
// materializes are local. Real NUMA placement is an OS concern invisible to
// correctness, so this package reproduces the *policy* and makes it
// observable: a per-node chunk allocator with recycling, a deterministic
// partition→node mapping shared by all matrices, worker→node affinity, and
// counters distinguishing node-local from remote accesses. Tests assert that
// the engine's placement policy yields zero (or near-zero) remote accesses.
package numa

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// DefaultChunkBytes is the size of the fixed memory chunks shared among all
// in-memory matrices (the paper uses 64 MB chunks; we default smaller so that
// laptop-scale runs still exercise multi-chunk paths).
const DefaultChunkBytes = 1 << 22 // 4 MiB

// Topology describes a simulated NUMA machine: a number of nodes and the
// chunk size used by every node-local allocator.
type Topology struct {
	nodes      int
	chunkBytes int
	pools      []*chunkPool

	localAcc  atomic.Int64
	remoteAcc atomic.Int64

	// Reservation ledger: budget is the byte ceiling concurrent passes may
	// reserve against the chunk pools (0 = unlimited); reserved is the sum of
	// grants outstanding. Guarded by memMu — reservations are rare (one per
	// admitted pass), so a mutex beats juggling CAS loops.
	memMu    sync.Mutex
	budget   int64
	reserved int64
}

// NewTopology creates a simulated topology with the given number of NUMA
// nodes. chunkBytes must be a multiple of 8; zero selects DefaultChunkBytes.
func NewTopology(nodes, chunkBytes int) *Topology {
	if nodes <= 0 {
		nodes = 1
	}
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	if chunkBytes%8 != 0 {
		panic(fmt.Sprintf("numa: chunk size %d not a multiple of 8", chunkBytes))
	}
	t := &Topology{nodes: nodes, chunkBytes: chunkBytes}
	t.pools = make([]*chunkPool, nodes)
	for i := range t.pools {
		t.pools[i] = newChunkPool(chunkBytes / 8)
	}
	return t
}

// Nodes returns the number of simulated NUMA nodes.
func (t *Topology) Nodes() int { return t.nodes }

// ChunkBytes returns the fixed chunk size in bytes.
func (t *Topology) ChunkBytes() int { return t.chunkBytes }

// ChunkFloats returns the number of float64 elements per chunk.
func (t *Topology) ChunkFloats() int { return t.chunkBytes / 8 }

// NodeOfPart maps an I/O-partition index to its home node. All matrices use
// this mapping, so partition i of matrix A and partition i of matrix B land
// on the same node — the property §3.3 of the paper relies on to avoid
// remote memory access during fused evaluation.
func (t *Topology) NodeOfPart(part int) int { return part % t.nodes }

// NodeOfWorker maps a worker thread index to the node it is bound to.
// Workers are spread evenly over the nodes.
func (t *Topology) NodeOfWorker(worker, totalWorkers int) int {
	if totalWorkers <= 0 {
		return 0
	}
	return worker * t.nodes / totalWorkers
}

// Alloc returns a chunk of exactly ChunkFloats() float64s homed on the given
// node, recycling a previously released chunk when one is available.
func (t *Topology) Alloc(node int) []float64 {
	return t.pools[node%t.nodes].get()
}

// Release returns a chunk obtained from Alloc to its node pool. The chunk
// must have been allocated on the same node.
func (t *Topology) Release(node int, chunk []float64) {
	t.pools[node%t.nodes].put(chunk)
}

// RecordAccess accounts one partition access by a worker: local if the
// worker's node matches the partition's home node, remote otherwise.
func (t *Topology) RecordAccess(workerNode, partNode int) {
	if workerNode == partNode {
		t.localAcc.Add(1)
	} else {
		t.remoteAcc.Add(1)
	}
}

// Stats reports cumulative local and remote partition accesses.
func (t *Topology) Stats() (local, remote int64) {
	return t.localAcc.Load(), t.remoteAcc.Load()
}

// ResetStats zeroes the access counters.
func (t *Topology) ResetStats() {
	t.localAcc.Store(0)
	t.remoteAcc.Store(0)
}

// SetMemBudget installs the byte ceiling that concurrent materialization
// passes may reserve against this topology's chunk pools (0 = unlimited).
// Lowering the budget below the bytes already reserved only affects future
// reservations; outstanding grants are never revoked.
func (t *Topology) SetMemBudget(bytes int64) {
	t.memMu.Lock()
	t.budget = bytes
	t.memMu.Unlock()
}

// MemBudget returns the configured reservation ceiling (0 = unlimited).
func (t *Topology) MemBudget() int64 {
	t.memMu.Lock()
	defer t.memMu.Unlock()
	return t.budget
}

// TryReserve attempts to reserve bytes of chunk-pool headroom for a pass.
// It succeeds when the topology has no budget or the grant fits; the caller
// must pair a success with ReleaseMem.
func (t *Topology) TryReserve(bytes int64) bool {
	if bytes < 0 {
		bytes = 0
	}
	t.memMu.Lock()
	defer t.memMu.Unlock()
	if t.budget > 0 && t.reserved+bytes > t.budget {
		return false
	}
	t.reserved += bytes
	return true
}

// ForceReserve records a reservation even when it overshoots the budget —
// the admission path uses this for a pass that is alone on the engine, so an
// oversized pass can always run (it just runs by itself).
func (t *Topology) ForceReserve(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	t.memMu.Lock()
	t.reserved += bytes
	t.memMu.Unlock()
}

// ReleaseMem returns a reservation made by TryReserve or ForceReserve.
func (t *Topology) ReleaseMem(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	t.memMu.Lock()
	t.reserved -= bytes
	if t.reserved < 0 {
		t.reserved = 0
	}
	t.memMu.Unlock()
}

// MemReserved returns the bytes currently reserved by admitted passes.
func (t *Topology) MemReserved() int64 {
	t.memMu.Lock()
	defer t.memMu.Unlock()
	return t.reserved
}

// PoolStats reports, per node, how many chunks are currently idle in the
// pool and how many were ever allocated fresh.
func (t *Topology) PoolStats() (idle, allocated []int) {
	idle = make([]int, t.nodes)
	allocated = make([]int, t.nodes)
	for i, p := range t.pools {
		idle[i], allocated[i] = p.stats()
	}
	return idle, allocated
}

// RegisterMetrics registers the topology's access counters, the reservation
// ledger, and per-node chunk-pool gauges with a metrics registry.
func (t *Topology) RegisterMetrics(reg *trace.Registry) {
	reg.CounterFunc("flashr_numa_local_accesses_total",
		"Partition accesses served from the worker's own NUMA node.",
		func() float64 { l, _ := t.Stats(); return float64(l) })
	reg.CounterFunc("flashr_numa_remote_accesses_total",
		"Partition accesses crossing NUMA nodes.",
		func() float64 { _, r := t.Stats(); return float64(r) })
	reg.GaugeFunc("flashr_numa_mem_budget_bytes",
		"Reservation ceiling for concurrent passes (0 = unlimited).",
		func() float64 { return float64(t.MemBudget()) })
	reg.GaugeFunc("flashr_numa_mem_reserved_bytes",
		"Bytes currently reserved by admitted passes.",
		func() float64 { return float64(t.MemReserved()) })
	for i, p := range t.pools {
		p := p
		node := trace.Label{Key: "node", Value: strconv.Itoa(i)}
		reg.GaugeFunc("flashr_numa_pool_idle_chunks",
			"Chunks idle in the node's free list.",
			func() float64 { idle, _ := p.stats(); return float64(idle) }, node)
		reg.GaugeFunc("flashr_numa_pool_minted_chunks",
			"Chunks ever allocated fresh on the node.",
			func() float64 { _, minted := p.stats(); return float64(minted) }, node)
	}
}

// chunkPool recycles fixed-size []float64 chunks. Keeping chunks uniform
// across all matrices lets memory be recycled between matrices of different
// shapes, which is the point of the paper's fixed-size chunk design. The
// free list is capped so long-lived processes return surplus memory to the
// garbage collector instead of hoarding every chunk ever freed.
type chunkPool struct {
	mu      sync.Mutex
	floats  int
	free    [][]float64
	minted  int
	maxIdle int
}

// defaultMaxIdleChunks bounds each node's free list (16 × 4 MiB = 64 MiB
// per node at the default chunk size — enough for steady-state reuse
// without long-lived processes hoarding freed matrices).
const defaultMaxIdleChunks = 16

func newChunkPool(floats int) *chunkPool {
	return &chunkPool{floats: floats, maxIdle: defaultMaxIdleChunks}
}

func (p *chunkPool) get() []float64 {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return c
	}
	p.minted++
	p.mu.Unlock()
	return make([]float64, p.floats)
}

func (p *chunkPool) put(c []float64) {
	if len(c) != p.floats {
		panic(fmt.Sprintf("numa: released chunk of %d floats into pool of %d", len(c), p.floats))
	}
	p.mu.Lock()
	if len(p.free) < p.maxIdle {
		p.free = append(p.free, c)
	}
	p.mu.Unlock()
}

func (p *chunkPool) stats() (idle, minted int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free), p.minted
}

var (
	defaultTopo     *Topology
	defaultTopoOnce sync.Once
	defaultTopoMu   sync.Mutex
)

// Default returns the process-wide topology (4 nodes, default chunk size),
// creating it on first use.
func Default() *Topology {
	defaultTopoOnce.Do(func() {
		defaultTopoMu.Lock()
		if defaultTopo == nil {
			defaultTopo = NewTopology(4, 0)
		}
		defaultTopoMu.Unlock()
	})
	return defaultTopo
}
