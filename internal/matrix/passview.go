package matrix

import "repro/internal/safs"

// StoreWithPass returns a view of st whose SAFS-backed I/O is fair-queued
// under and attributed to the given pass. In-memory stores are returned
// unchanged (their traffic never reaches the array), and a nil pass returns
// st itself. Views never own underlying files, so freeing a view is a no-op
// for the original's data.
func StoreWithPass(st Store, p *safs.Pass) Store {
	if p == nil || st == nil {
		return st
	}
	switch s := st.(type) {
	case *SAFSStore:
		return s.WithPass(p)
	case *BlockedStore:
		blocks := make([]Store, len(s.blocks))
		changed := false
		for i, b := range s.blocks {
			blocks[i] = StoreWithPass(b, p)
			if blocks[i] != b {
				changed = true
			}
		}
		if !changed {
			return s
		}
		return &BlockedStore{blocks: blocks, nrow: s.nrow, ncol: s.ncol}
	default:
		return st
	}
}
