package matrix

import (
	"fmt"

	"repro/internal/numa"
)

// BlockedStore is the block-matrix format of §3.2.2: a tall matrix wider
// than BlockCols columns is stored as a sequence of TAS blocks of exactly
// BlockCols columns (the last block may be narrower), each block a separate
// Store. Combined with I/O partitioning on each block this gives the 2-D
// partitioning of a dense matrix; reading a column subset touches only the
// blocks containing requested columns.
type BlockedStore struct {
	blocks []Store
	nrow   int64
	ncol   int
}

// NewBlockedStore builds a block matrix over pre-created blocks. All blocks
// must share NRow and PartRows; widths must be BlockCols except the last.
func NewBlockedStore(blocks []Store) (*BlockedStore, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("matrix: blocked store needs at least one block")
	}
	nrow := blocks[0].NRow()
	pr := blocks[0].PartRows()
	ncol := 0
	for i, b := range blocks {
		if b.NRow() != nrow {
			return nil, fmt.Errorf("matrix: block %d has %d rows, want %d", i, b.NRow(), nrow)
		}
		if b.PartRows() != pr {
			return nil, fmt.Errorf("matrix: block %d has partition height %d, want %d", i, b.PartRows(), pr)
		}
		if i < len(blocks)-1 && b.NCol() != BlockCols {
			return nil, fmt.Errorf("matrix: interior block %d has %d columns, want %d", i, b.NCol(), BlockCols)
		}
		if i == len(blocks)-1 && b.NCol() > BlockCols {
			return nil, fmt.Errorf("matrix: last block has %d columns, max %d", b.NCol(), BlockCols)
		}
		ncol += b.NCol()
	}
	return &BlockedStore{blocks: blocks, nrow: nrow, ncol: ncol}, nil
}

// NumBlockCols returns how many TAS blocks an ncol-wide matrix decomposes
// into.
func NumBlockCols(ncol int) int { return (ncol + BlockCols - 1) / BlockCols }

// BlockWidth returns the width of block b for an ncol-wide matrix.
func BlockWidth(ncol, b int) int {
	w := ncol - b*BlockCols
	if w > BlockCols {
		w = BlockCols
	}
	return w
}

// NewBlockedMemStore allocates a block matrix entirely in memory.
func NewBlockedMemStore(topo *numa.Topology, nrow int64, ncol, partRows int, layout Layout) (*BlockedStore, error) {
	nb := NumBlockCols(ncol)
	if partRows == 0 {
		partRows = DefaultPartRows(ncol)
	}
	blocks := make([]Store, nb)
	for b := 0; b < nb; b++ {
		ms, err := NewMemStore(topo, nrow, BlockWidth(ncol, b), partRows, layout)
		if err != nil {
			return nil, err
		}
		blocks[b] = ms
	}
	return NewBlockedStore(blocks)
}

// NRow implements Store.
func (s *BlockedStore) NRow() int64 { return s.nrow }

// NCol implements Store.
func (s *BlockedStore) NCol() int { return s.ncol }

// PartRows implements Store.
func (s *BlockedStore) PartRows() int { return s.blocks[0].PartRows() }

// NumParts implements Store.
func (s *BlockedStore) NumParts() int { return s.blocks[0].NumParts() }

// NumBlocks returns the number of column blocks.
func (s *BlockedStore) NumBlocks() int { return len(s.blocks) }

// Block returns block b.
func (s *BlockedStore) Block(b int) Store { return s.blocks[b] }

// Kind implements Store.
func (s *BlockedStore) Kind() string { return "blocked/" + s.blocks[0].Kind() }

// ReadPart assembles partition i row-major across all blocks.
func (s *BlockedStore) ReadPart(i int, dst []float64) error {
	if err := CheckPart(s, i); err != nil {
		return err
	}
	rows := rowsOf(s, i)
	if len(dst) < rows*s.ncol {
		return fmt.Errorf("matrix: ReadPart %d: buffer %d < %d", i, len(dst), rows*s.ncol)
	}
	tmp := make([]float64, rows*BlockCols)
	colOff := 0
	for _, b := range s.blocks {
		bc := b.NCol()
		if err := b.ReadPart(i, tmp[:rows*bc]); err != nil {
			return err
		}
		scatterCols(dst, tmp, rows, s.ncol, bc, colOff)
		colOff += bc
	}
	return nil
}

// ReadPartCols reads only the blocks containing requested columns.
func (s *BlockedStore) ReadPartCols(i int, cols []int, dst []float64) error {
	if err := CheckPart(s, i); err != nil {
		return err
	}
	rows := rowsOf(s, i)
	k := len(cols)
	if len(dst) < rows*k {
		return fmt.Errorf("matrix: ReadPartCols %d: buffer %d < %d", i, len(dst), rows*k)
	}
	// Group requested columns by block, preserving output position.
	type want struct {
		outIdx   int
		blockCol int
	}
	perBlock := make(map[int][]want)
	for j, c := range cols {
		if c < 0 || c >= s.ncol {
			return fmt.Errorf("matrix: column %d out of range [0,%d)", c, s.ncol)
		}
		b := c / BlockCols
		perBlock[b] = append(perBlock[b], want{outIdx: j, blockCol: c - b*BlockCols})
	}
	tmp := make([]float64, rows*BlockCols)
	for b, wants := range perBlock {
		blk := s.blocks[b]
		bcols := make([]int, len(wants))
		for j, w := range wants {
			bcols[j] = w.blockCol
		}
		if err := blk.ReadPartCols(i, bcols, tmp[:rows*len(wants)]); err != nil {
			return err
		}
		for j, w := range wants {
			for r := 0; r < rows; r++ {
				dst[r*k+w.outIdx] = tmp[r*len(wants)+j]
			}
		}
	}
	return nil
}

// WritePart splits a row-major partition buffer back into blocks.
func (s *BlockedStore) WritePart(i int, src []float64) error {
	if err := CheckPart(s, i); err != nil {
		return err
	}
	rows := rowsOf(s, i)
	if len(src) < rows*s.ncol {
		return fmt.Errorf("matrix: WritePart %d: buffer %d < %d", i, len(src), rows*s.ncol)
	}
	tmp := make([]float64, rows*BlockCols)
	colOff := 0
	for _, b := range s.blocks {
		bc := b.NCol()
		for r := 0; r < rows; r++ {
			copy(tmp[r*bc:(r+1)*bc], src[r*s.ncol+colOff:r*s.ncol+colOff+bc])
		}
		if err := b.WritePart(i, tmp[:rows*bc]); err != nil {
			return err
		}
		colOff += bc
	}
	return nil
}

// Free releases all blocks.
func (s *BlockedStore) Free() error {
	var first error
	for _, b := range s.blocks {
		if err := b.Free(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// scatterCols copies a row-major rows×bc block buffer into columns
// [colOff, colOff+bc) of a row-major rows×ncol buffer.
func scatterCols(dst, src []float64, rows, ncol, bc, colOff int) {
	for r := 0; r < rows; r++ {
		copy(dst[r*ncol+colOff:r*ncol+colOff+bc], src[r*bc:(r+1)*bc])
	}
}
