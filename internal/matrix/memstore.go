package matrix

import (
	"fmt"
	"sync"

	"repro/internal/numa"
)

// MemStore keeps a tall matrix in memory, one I/O partition at a time, with
// each partition's backing memory homed on the NUMA node that
// Topology.NodeOfPart assigns it — the paper's policy that partition i of
// every matrix lives on the same node. Partitions small enough to fit in a
// pool chunk borrow one (and return it on Free), so memory is recycled
// across matrices of different shapes.
type MemStore struct {
	topo     *numa.Topology
	nrow     int64
	ncol     int
	partRows int
	layout   Layout

	mu    sync.RWMutex
	parts []memPart
	freed bool
}

type memPart struct {
	data   []float64 // rows*ncol valid elements, layout order
	pooled bool      // whether data came from the node chunk pool
	node   int
}

// NewMemStore allocates an in-memory store for an nrow×ncol matrix. partRows
// must be a power of two (0 selects DefaultPartRows(ncol)). The topology may
// be nil, in which case the process default is used.
func NewMemStore(topo *numa.Topology, nrow int64, ncol, partRows int, layout Layout) (*MemStore, error) {
	if topo == nil {
		topo = numa.Default()
	}
	if partRows == 0 {
		partRows = DefaultPartRows(ncol)
	}
	if partRows <= 0 || partRows&(partRows-1) != 0 {
		return nil, fmt.Errorf("matrix: partition rows %d is not a power of two", partRows)
	}
	if nrow < 0 || ncol <= 0 {
		return nil, fmt.Errorf("matrix: invalid shape %dx%d", nrow, ncol)
	}
	s := &MemStore{topo: topo, nrow: nrow, ncol: ncol, partRows: partRows, layout: layout}
	s.parts = make([]memPart, NumParts(nrow, partRows))
	return s, nil
}

// NRow implements Store.
func (s *MemStore) NRow() int64 { return s.nrow }

// NCol implements Store.
func (s *MemStore) NCol() int { return s.ncol }

// PartRows implements Store.
func (s *MemStore) PartRows() int { return s.partRows }

// NumParts implements Store.
func (s *MemStore) NumParts() int { return len(s.parts) }

// Layout reports the physical element order of stored partitions.
func (s *MemStore) Layout() Layout { return s.layout }

// Kind implements Store.
func (s *MemStore) Kind() string { return "mem" }

// NodeOfPart reports the NUMA node holding partition i.
func (s *MemStore) NodeOfPart(i int) int { return s.topo.NodeOfPart(i) }

// ensurePart allocates backing memory for partition i if needed. Caller must
// hold the write lock.
func (s *MemStore) ensurePart(i int) *memPart {
	p := &s.parts[i]
	if p.data != nil {
		return p
	}
	need := rowsOf(s, i) * s.ncol
	node := s.topo.NodeOfPart(i)
	// Borrow a pool chunk only when the partition uses at least half of
	// it; smaller partitions get exact allocations. This keeps the
	// fixed-chunk recycling for the common case without a 128 KB vector
	// partition pinning a 4 MB chunk.
	if cf := s.topo.ChunkFloats(); need <= cf && need*2 >= cf {
		p.data = s.topo.Alloc(node)[:need]
		p.pooled = true
	} else {
		p.data = make([]float64, need)
	}
	p.node = node
	return p
}

// WritePart implements Store.
func (s *MemStore) WritePart(i int, src []float64) error {
	if err := CheckPart(s, i); err != nil {
		return err
	}
	rows := rowsOf(s, i)
	if len(src) < rows*s.ncol {
		return fmt.Errorf("matrix: WritePart %d: buffer %d < %d", i, len(src), rows*s.ncol)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.freed {
		return fmt.Errorf("matrix: write to freed store")
	}
	p := s.ensurePart(i)
	if s.layout == RowMajor {
		copy(p.data, src[:rows*s.ncol])
	} else {
		RowToCol(p.data, src, rows, s.ncol)
	}
	return nil
}

// ReadPart implements Store.
func (s *MemStore) ReadPart(i int, dst []float64) error {
	if err := CheckPart(s, i); err != nil {
		return err
	}
	rows := rowsOf(s, i)
	if len(dst) < rows*s.ncol {
		return fmt.Errorf("matrix: ReadPart %d: buffer %d < %d", i, len(dst), rows*s.ncol)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	p := s.parts[i]
	if p.data == nil {
		// Unwritten partitions read as zeros, like a sparse file.
		zero(dst[:rows*s.ncol])
		return nil
	}
	if s.layout == RowMajor {
		copy(dst, p.data)
	} else {
		ColToRow(dst, p.data, rows, s.ncol)
	}
	return nil
}

// PartRef returns a zero-copy read-only view of partition i when the store
// layout allows it (row-major, partition written). The engine uses this to
// avoid copying in-memory leaf partitions into scratch buffers — the
// FlashR-IM fast path.
func (s *MemStore) PartRef(i int) ([]float64, bool) {
	if s.layout != RowMajor || CheckPart(s, i) != nil {
		return nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.freed || s.parts[i].data == nil {
		return nil, false
	}
	return s.parts[i].data, true
}

// ReadPartCols implements Store.
func (s *MemStore) ReadPartCols(i int, cols []int, dst []float64) error {
	if err := CheckPart(s, i); err != nil {
		return err
	}
	rows := rowsOf(s, i)
	k := len(cols)
	if len(dst) < rows*k {
		return fmt.Errorf("matrix: ReadPartCols %d: buffer %d < %d", i, len(dst), rows*k)
	}
	for _, c := range cols {
		if c < 0 || c >= s.ncol {
			return fmt.Errorf("matrix: column %d out of range [0,%d)", c, s.ncol)
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	p := s.parts[i]
	if p.data == nil {
		zero(dst[:rows*k])
		return nil
	}
	if s.layout == RowMajor {
		GatherCols(dst, p.data, rows, s.ncol, cols)
	} else {
		for j, c := range cols {
			col := p.data[c*rows : (c+1)*rows]
			for r := 0; r < rows; r++ {
				dst[r*k+j] = col[r]
			}
		}
	}
	return nil
}

// Free returns pooled chunks to their NUMA nodes and drops all data.
func (s *MemStore) Free() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.freed {
		return nil
	}
	for i := range s.parts {
		p := &s.parts[i]
		if p.pooled && p.data != nil {
			s.topo.Release(p.node, p.data[:cap(p.data)][:s.topo.ChunkFloats()])
		}
		p.data = nil
	}
	s.freed = true
	return nil
}

func zero(p []float64) {
	for i := range p {
		p[i] = 0
	}
}
