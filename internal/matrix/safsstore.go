package matrix

import (
	"fmt"
	"unsafe"

	"repro/internal/safs"
)

// SAFSStore keeps a tall matrix on the simulated SSD array as one striped
// SAFS file. Partitions are stored row-major, partition after partition, so
// the engine's sequential dispatch of I/O partitions translates into
// sequential, merge-friendly access on every drive (§3.3 of the paper).
type SAFSStore struct {
	fs       *safs.FS
	file     *safs.File
	nrow     int64
	ncol     int
	partRows int
	owned    bool // whether Free removes the file

	// pass tags this store's I/O for fair queueing and per-pass attribution
	// (nil = untagged). Set only on WithPass views.
	pass *safs.Pass
}

// WithPass returns a view of the store whose I/O is fair-queued under and
// attributed to the given pass. The view never owns the file — Free on it is
// a no-op — so a pass-scoped view can be dropped without touching the
// original store's data.
func (s *SAFSStore) WithPass(p *safs.Pass) *SAFSStore {
	if p == nil {
		return s
	}
	v := *s
	v.owned = false
	v.pass = p
	return &v
}

// NewSAFSStore creates a new striped file sized for an nrow×ncol matrix.
// partRows=0 selects DefaultPartRows(ncol).
func NewSAFSStore(fs *safs.FS, name string, nrow int64, ncol, partRows int) (*SAFSStore, error) {
	if partRows == 0 {
		partRows = DefaultPartRows(ncol)
	}
	if partRows <= 0 || partRows&(partRows-1) != 0 {
		return nil, fmt.Errorf("matrix: partition rows %d is not a power of two", partRows)
	}
	if nrow < 0 || ncol <= 0 {
		return nil, fmt.Errorf("matrix: invalid shape %dx%d", nrow, ncol)
	}
	f, err := fs.Create(name, nrow*int64(ncol)*8)
	if err != nil {
		return nil, err
	}
	return &SAFSStore{fs: fs, file: f, nrow: nrow, ncol: ncol, partRows: partRows, owned: true}, nil
}

// OpenSAFSStore opens an existing matrix file whose shape is known to the
// caller (cmd/flashr-gen records shapes in a sidecar; tests pass them
// directly).
func OpenSAFSStore(fs *safs.FS, name string, nrow int64, ncol, partRows int) (*SAFSStore, error) {
	f, err := fs.OpenFile(name)
	if err != nil {
		return nil, err
	}
	if partRows == 0 {
		partRows = DefaultPartRows(ncol)
	}
	if want := nrow * int64(ncol) * 8; f.Size() != want {
		return nil, fmt.Errorf("matrix: %q has %d bytes, want %d for %dx%d", name, f.Size(), want, nrow, ncol)
	}
	return &SAFSStore{fs: fs, file: f, nrow: nrow, ncol: ncol, partRows: partRows}, nil
}

// NRow implements Store.
func (s *SAFSStore) NRow() int64 { return s.nrow }

// NCol implements Store.
func (s *SAFSStore) NCol() int { return s.ncol }

// PartRows implements Store.
func (s *SAFSStore) PartRows() int { return s.partRows }

// NumParts implements Store.
func (s *SAFSStore) NumParts() int { return NumParts(s.nrow, s.partRows) }

// Kind implements Store.
func (s *SAFSStore) Kind() string { return "safs" }

// File exposes the underlying striped file (used by async prefetchers).
func (s *SAFSStore) File() *safs.File { return s.file }

// Verify scrubs the store's file against its recorded per-stripe checksums,
// reporting corrupt stripes without failing the first read that hits them.
func (s *SAFSStore) Verify() (safs.VerifyReport, error) { return s.file.Verify() }

// PartOffset returns the byte offset of partition i in the file.
func (s *SAFSStore) PartOffset(i int) int64 {
	return int64(i) * int64(s.partRows) * int64(s.ncol) * 8
}

// PartBytes returns the byte length of partition i.
func (s *SAFSStore) PartBytes(i int) int {
	return rowsOf(s, i) * s.ncol * 8
}

// asBytes reinterprets a float64 slice as its underlying bytes (native
// endianness; matrices never leave the machine, matching SAFS semantics).
func asBytes(p []float64) []byte {
	if len(p) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&p[0])), len(p)*8)
}

// ReadPart implements Store.
func (s *SAFSStore) ReadPart(i int, dst []float64) error {
	if err := CheckPart(s, i); err != nil {
		return err
	}
	n := rowsOf(s, i) * s.ncol
	if len(dst) < n {
		return fmt.Errorf("matrix: ReadPart %d: buffer %d < %d", i, len(dst), n)
	}
	return s.file.ReadAtPass(asBytes(dst[:n]), s.PartOffset(i), s.pass)
}

// ReadPartAsync schedules an asynchronous read of partition i into dst and
// reports completion on done with the given tag.
func (s *SAFSStore) ReadPartAsync(i int, dst []float64, tag int, done chan<- safs.Request) error {
	if err := CheckPart(s, i); err != nil {
		return err
	}
	n := rowsOf(s, i) * s.ncol
	if len(dst) < n {
		return fmt.Errorf("matrix: ReadPartAsync %d: buffer %d < %d", i, len(dst), n)
	}
	s.file.ReadAsyncPass(asBytes(dst[:n]), s.PartOffset(i), tag, done, s.pass)
	return nil
}

// ReadPartCols implements Store. A flat SAFS matrix must read the whole
// partition; BlockedStore over SAFS avoids that for wide matrices.
func (s *SAFSStore) ReadPartCols(i int, cols []int, dst []float64) error {
	rows := rowsOf(s, i)
	tmp := make([]float64, rows*s.ncol)
	if err := s.ReadPart(i, tmp); err != nil {
		return err
	}
	for _, c := range cols {
		if c < 0 || c >= s.ncol {
			return fmt.Errorf("matrix: column %d out of range [0,%d)", c, s.ncol)
		}
	}
	GatherCols(dst, tmp, rows, s.ncol, cols)
	return nil
}

// WritePart implements Store.
func (s *SAFSStore) WritePart(i int, src []float64) error {
	if err := CheckPart(s, i); err != nil {
		return err
	}
	n := rowsOf(s, i) * s.ncol
	if len(src) < n {
		return fmt.Errorf("matrix: WritePart %d: buffer %d < %d", i, len(src), n)
	}
	return s.file.WriteAtPass(asBytes(src[:n]), s.PartOffset(i), s.pass)
}

// Free removes the file from the array if this store created it.
func (s *SAFSStore) Free() error {
	if !s.owned {
		return nil
	}
	s.owned = false
	return s.fs.Remove(s.file.Name())
}
