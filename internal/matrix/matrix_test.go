package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/numa"
	"repro/internal/safs"
)

func fillRand(rng *rand.Rand, p []float64) {
	for i := range p {
		p[i] = rng.NormFloat64()
	}
}

// roundTripStore writes random partitions and checks ReadPart/ReadPartCols.
func roundTripStore(t *testing.T, s Store, nrow int64, ncol int) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	want := make([][]float64, s.NumParts())
	for p := 0; p < s.NumParts(); p++ {
		rows := PartRowsOf(nrow, s.PartRows(), p)
		buf := make([]float64, rows*ncol)
		fillRand(rng, buf)
		want[p] = buf
		if err := s.WritePart(p, buf); err != nil {
			t.Fatalf("WritePart(%d): %v", p, err)
		}
	}
	got := make([]float64, s.PartRows()*ncol)
	for p := 0; p < s.NumParts(); p++ {
		rows := PartRowsOf(nrow, s.PartRows(), p)
		if err := s.ReadPart(p, got[:rows*ncol]); err != nil {
			t.Fatalf("ReadPart(%d): %v", p, err)
		}
		for i, v := range want[p] {
			if got[i] != v {
				t.Fatalf("part %d elem %d: %g != %g", p, i, got[i], v)
			}
		}
	}
	// Column subsets.
	cols := []int{ncol - 1, 0}
	if ncol > 2 {
		cols = append(cols, ncol/2)
	}
	sub := make([]float64, s.PartRows()*len(cols))
	for p := 0; p < s.NumParts(); p++ {
		rows := PartRowsOf(nrow, s.PartRows(), p)
		if err := s.ReadPartCols(p, cols, sub[:rows*len(cols)]); err != nil {
			t.Fatalf("ReadPartCols(%d): %v", p, err)
		}
		for r := 0; r < rows; r++ {
			for j, c := range cols {
				if sub[r*len(cols)+j] != want[p][r*ncol+c] {
					t.Fatalf("part %d row %d col %d mismatch", p, r, c)
				}
			}
		}
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	topo := numa.NewTopology(2, 1<<14)
	for _, layout := range []Layout{RowMajor, ColMajor} {
		s, err := NewMemStore(topo, 1000, 5, 256, layout)
		if err != nil {
			t.Fatal(err)
		}
		roundTripStore(t, s, 1000, 5)
		if err := s.Free(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMemStoreChunkRecycling(t *testing.T) {
	topo := numa.NewTopology(2, 1<<12)                  // 512-float chunks
	s, err := NewMemStore(topo, 1024, 1, 256, RowMajor) // 256-float partitions fit chunks
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 256)
	for p := 0; p < s.NumParts(); p++ {
		if err := s.WritePart(p, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Free(); err != nil {
		t.Fatal(err)
	}
	idle, _ := topo.PoolStats()
	total := 0
	for _, n := range idle {
		total += n
	}
	if total != s.NumParts() {
		t.Fatalf("freed %d chunks back to pools, want %d", total, s.NumParts())
	}
}

func TestSAFSStoreRoundTrip(t *testing.T) {
	fs, err := safs.OpenTempDir(t.TempDir(), 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	s, err := NewSAFSStore(fs, "m", 1000, 5, 256)
	if err != nil {
		t.Fatal(err)
	}
	roundTripStore(t, s, 1000, 5)
	if err := s.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockedStoreRoundTrip(t *testing.T) {
	topo := numa.NewTopology(2, 1<<16)
	const ncol = 70 // 3 blocks: 32+32+6
	s, err := NewBlockedMemStore(topo, 800, ncol, 256, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBlocks() != 3 {
		t.Fatalf("blocks %d, want 3", s.NumBlocks())
	}
	if s.Block(2).NCol() != 6 {
		t.Fatalf("last block width %d, want 6", s.Block(2).NCol())
	}
	roundTripStore(t, s, 800, ncol)
}

func TestBlockedOverSAFS(t *testing.T) {
	fs, err := safs.OpenTempDir(t.TempDir(), 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	blocks := make([]Store, 2)
	for b := range blocks {
		w := BlockWidth(40, b)
		st, err := NewSAFSStore(fs, "m.b"+string(rune('0'+b)), 600, w, 256)
		if err != nil {
			t.Fatal(err)
		}
		blocks[b] = st
	}
	s, err := NewBlockedStore(blocks)
	if err != nil {
		t.Fatal(err)
	}
	roundTripStore(t, s, 600, 40)
}

// TestColumnSubsetTouchesOnlyNeededBlocks asserts the §3.2.2 property: a
// column subset confined to one block reads only that block's bytes.
func TestColumnSubsetTouchesOnlyNeededBlocks(t *testing.T) {
	fs, err := safs.OpenTempDir(t.TempDir(), 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	blocks := make([]Store, 2)
	for b := range blocks {
		st, err := NewSAFSStore(fs, "x.b"+string(rune('0'+b)), 512, 32, 256)
		if err != nil {
			t.Fatal(err)
		}
		blocks[b] = st
	}
	s, err := NewBlockedStore(blocks)
	if err != nil {
		t.Fatal(err)
	}
	full := make([]float64, 256*64)
	for p := 0; p < s.NumParts(); p++ {
		if err := s.WritePart(p, full); err != nil {
			t.Fatal(err)
		}
	}
	before := fs.Stats().BytesRead
	sub := make([]float64, 256*2)
	if err := s.ReadPartCols(0, []int{3, 17}, sub); err != nil {
		t.Fatal(err)
	}
	delta := fs.Stats().BytesRead - before
	oneBlockPart := int64(256 * 32 * 8)
	if delta > oneBlockPart {
		t.Fatalf("column subset read %d bytes, more than one block partition (%d)", delta, oneBlockPart)
	}
}

// TestLayoutConversions property-tests RowToCol/ColToRow as inverses.
func TestLayoutConversions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(20)
		cols := 1 + rng.Intn(20)
		src := make([]float64, rows*cols)
		fillRand(rng, src)
		cm := make([]float64, rows*cols)
		back := make([]float64, rows*cols)
		RowToCol(cm, src, rows, cols)
		ColToRow(back, cm, rows, cols)
		for i := range src {
			if back[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionArithmetic(t *testing.T) {
	if got := NumParts(1000, 256); got != 4 {
		t.Fatalf("NumParts=%d", got)
	}
	if got := PartRowsOf(1000, 256, 3); got != 232 {
		t.Fatalf("last part rows=%d", got)
	}
	if got := PartRowsOf(1024, 256, 3); got != 256 {
		t.Fatalf("aligned last part rows=%d", got)
	}
	if got := DefaultPartRows(1); got&(got-1) != 0 || got < MinPartRows {
		t.Fatalf("DefaultPartRows(1)=%d", got)
	}
	if got := DefaultPartRows(1 << 30); got != MinPartRows {
		t.Fatalf("DefaultPartRows(huge)=%d", got)
	}
	if NumBlockCols(32) != 1 || NumBlockCols(33) != 2 || BlockWidth(40, 1) != 8 {
		t.Fatal("block arithmetic wrong")
	}
}

func TestPartRowsMustBePowerOfTwo(t *testing.T) {
	if _, err := NewMemStore(nil, 100, 2, 100, RowMajor); err == nil {
		t.Fatal("non-power-of-two partition height accepted")
	}
}
