// Package matrix implements FlashR's dense matrix storage formats (§3.2 of
// the paper): tall-and-skinny (TAS) matrices physically partitioned into
// power-of-two-row I/O partitions, stored either in NUMA-aware memory chunks
// or on the simulated SSD array (SAFS), and block matrices that decompose a
// wide tall matrix into TAS blocks of at most 32 columns each.
//
// The canonical in-buffer representation of one I/O partition is row-major
// (rows × ncol float64). Column-major physical storage is supported at the
// store level; the execution engine treats transpose as a zero-copy view, so
// layout only affects storage, not kernels.
package matrix

import (
	"fmt"
	"math/bits"
)

// DType is the logical element type of a matrix. All storage is physically
// float64 (as in R, where logicals and integers promote to double on most
// arithmetic); the logical type selects semantics such as which multiply
// kernel Table 2 of the paper prescribes (BLAS for floats, the generalized
// inner-product GenOp for integers).
type DType int8

const (
	// F64 is IEEE double precision.
	F64 DType = iota
	// I64 marks integer-valued matrices.
	I64
	// Bool marks logical matrices (0/1 valued).
	Bool
)

// String returns the R-flavored name of the type.
func (d DType) String() string {
	switch d {
	case F64:
		return "double"
	case I64:
		return "integer"
	case Bool:
		return "logical"
	default:
		return fmt.Sprintf("DType(%d)", int(d))
	}
}

// Layout is the physical element order inside an I/O partition.
type Layout int8

const (
	// RowMajor stores each partition row-contiguously (Figure 4(b)).
	RowMajor Layout = iota
	// ColMajor stores each partition column-contiguously (Figure 4(a)).
	ColMajor
)

func (l Layout) String() string {
	if l == RowMajor {
		return "row-major"
	}
	return "col-major"
}

// BlockCols is the column width of TAS blocks inside a block matrix
// (§3.2.2: "TAS blocks with 32 columns each").
const BlockCols = 32

// MaxPartRows bounds the I/O partition height.
const MaxPartRows = 1 << 18

// MinPartRows is the smallest I/O partition height (must stay a power of
// two per §3.2.1).
const MinPartRows = 1 << 8

// DefaultPartRows picks the number of rows per I/O partition for a matrix
// with ncol columns: the largest power of two keeping a partition near the
// target byte size, clamped to [MinPartRows, MaxPartRows].
func DefaultPartRows(ncol int) int {
	const targetBytes = 2 << 20 // 2 MiB per partition
	if ncol < 1 {
		ncol = 1
	}
	rows := targetBytes / 8 / ncol
	if rows < MinPartRows {
		return MinPartRows
	}
	p := 1 << (bits.Len(uint(rows)) - 1)
	if p > MaxPartRows {
		return MaxPartRows
	}
	return p
}

// NumParts returns how many I/O partitions a matrix of nrow rows has under
// the given partition height.
func NumParts(nrow int64, partRows int) int {
	return int((nrow + int64(partRows) - 1) / int64(partRows))
}

// PartRowsOf returns the number of valid rows in partition i (the last
// partition may be short).
func PartRowsOf(nrow int64, partRows, i int) int {
	start := int64(i) * int64(partRows)
	rows := nrow - start
	if rows > int64(partRows) {
		rows = int64(partRows)
	}
	if rows < 0 {
		rows = 0
	}
	return int(rows)
}

// Store is materialized tall-matrix data, addressed by I/O partition. All
// ReadPart/WritePart buffers are row-major rows×ncol. Implementations:
// MemStore (NUMA chunk pools), SAFSStore (striped SSD array), BlockedStore
// (32-column TAS blocks over either).
type Store interface {
	// NRow is the number of rows (the partition dimension).
	NRow() int64
	// NCol is the number of columns.
	NCol() int
	// PartRows is the I/O partition height (power of two).
	PartRows() int
	// NumParts is the number of I/O partitions.
	NumParts() int
	// ReadPart fills dst (rows(i)×NCol row-major) with partition i.
	ReadPart(i int, dst []float64) error
	// ReadPartCols fills dst (rows(i)×len(cols) row-major) with the given
	// column subset of partition i. Blocked stores touch only the blocks
	// that contain requested columns.
	ReadPartCols(i int, cols []int, dst []float64) error
	// WritePart stores partition i from src (rows(i)×NCol row-major).
	WritePart(i int, src []float64) error
	// Kind identifies the backend ("mem", "safs", "blocked/...").
	Kind() string
	// Free releases backing resources (pool chunks, SAFS files).
	Free() error
}

// rowsOf is a helper shared by the store implementations.
func rowsOf(s Store, i int) int { return PartRowsOf(s.NRow(), s.PartRows(), i) }

// CheckPart validates a partition index against a store.
func CheckPart(s Store, i int) error {
	if i < 0 || i >= s.NumParts() {
		return fmt.Errorf("matrix: partition %d out of range [0,%d) for %dx%d %s store",
			i, s.NumParts(), s.NRow(), s.NCol(), s.Kind())
	}
	return nil
}

// RowToCol converts a row-major rows×cols buffer into column-major order.
func RowToCol(dst, src []float64, rows, cols int) {
	for r := 0; r < rows; r++ {
		off := r * cols
		for c := 0; c < cols; c++ {
			dst[c*rows+r] = src[off+c]
		}
	}
}

// ColToRow converts a column-major rows×cols buffer into row-major order.
func ColToRow(dst, src []float64, rows, cols int) {
	for c := 0; c < cols; c++ {
		off := c * rows
		for r := 0; r < rows; r++ {
			dst[r*cols+c] = src[off+r]
		}
	}
}

// GatherCols copies the given columns of a row-major rows×cols buffer into a
// row-major rows×len(cols) buffer.
func GatherCols(dst, src []float64, rows, srcCols int, cols []int) {
	k := len(cols)
	for r := 0; r < rows; r++ {
		so := r * srcCols
		do := r * k
		for j, c := range cols {
			dst[do+j] = src[so+c]
		}
	}
}
