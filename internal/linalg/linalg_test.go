package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
)

// randSPD builds a random symmetric positive-definite matrix A = BᵀB + n*I.
func randSPD(rng *rand.Rand, n int) *dense.Dense {
	b := dense.New(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := dense.CrossProd(b, b)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

// TestEigSymReconstruction property-tests A == V diag(λ) Vᵀ and VᵀV == I.
func TestEigSymReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := randSPD(rng, n)
		vals, vecs, err := EigSym(a)
		if err != nil {
			return false
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-9 {
				return false
			}
		}
		d := dense.New(n, n)
		for i, v := range vals {
			d.Set(i, i, v)
		}
		recon := dense.MatMul(dense.MatMul(vecs, d), vecs.T())
		if !dense.Equalish(recon, a, 1e-7) {
			return false
		}
		return dense.Equalish(dense.CrossProd(vecs, vecs), dense.Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEigSymRejectsAsymmetric(t *testing.T) {
	a := dense.FromRows([][]float64{{1, 2}, {3, 4}})
	if _, _, err := EigSym(a); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
}

func TestEigSymKnownValues(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	a := dense.FromRows([][]float64{{2, 1}, {1, 2}})
	vals, _, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("vals=%v", vals)
	}
}

// TestCholeskyReconstruction property-tests L Lᵀ == A.
func TestCholeskyReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := randSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		// L must be lower-triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					return false
				}
			}
		}
		return dense.Equalish(dense.MatMul(l, l.T()), a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := dense.FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrNotPD) {
		t.Fatalf("err=%v, want ErrNotPD", err)
	}
}

// TestSolveChol property-tests A x == b.
func TestSolveChol(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randSPD(rng, n)
		b := dense.New(n, 2)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := SolveChol(l, b)
		return dense.Equalish(dense.MatMul(a, x), b, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestInvSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSPD(rng, 8)
	inv, err := InvSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equalish(dense.MatMul(a, inv), dense.Identity(8), 1e-8) {
		t.Fatal("A * A^-1 != I")
	}
}

func TestLogDetChol(t *testing.T) {
	// det([[4,0],[0,9]]) = 36.
	a := dense.FromRows([][]float64{{4, 0}, {0, 9}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := LogDetChol(l); math.Abs(got-math.Log(36)) > 1e-12 {
		t.Fatalf("logdet=%g want %g", got, math.Log(36))
	}
}

// TestSolve property-tests the pivoted LU path on general matrices.
func TestSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := dense.New(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)) // keep well-conditioned
		}
		b := dense.New(n, 3)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		return dense.Equalish(dense.MatMul(a, x), b, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSingular(t *testing.T) {
	a := dense.FromRows([][]float64{{1, 2}, {2, 4}})
	b := dense.New(2, 1)
	if _, err := Solve(a, b); err == nil {
		t.Fatal("singular system solved")
	}
}

// TestSolveNeedsPivoting exercises a matrix with a zero leading pivot.
func TestSolveNeedsPivoting(t *testing.T) {
	a := dense.FromRows([][]float64{{0, 1}, {1, 0}})
	b := dense.FromRows([][]float64{{3}, {5}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x.At(0, 0)-5) > 1e-12 || math.Abs(x.At(1, 0)-3) > 1e-12 {
		t.Fatalf("x=%v", x.Data)
	}
}

func TestSqrtSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randSPD(rng, 6)
	s, err := SqrtSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equalish(dense.MatMul(s, s), a, 1e-7) {
		t.Fatal("sqrt(A)^2 != A")
	}
}
