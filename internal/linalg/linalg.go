// Package linalg provides the dense factorizations FlashR's algorithm layer
// needs where the paper relies on LAPACK through R: a cyclic Jacobi
// eigensolver for symmetric matrices (PCA on the Gramian, MASS-style
// mvrnorm, LDA whitening), Cholesky factorization with triangular solves
// (GMM covariance inverses and log-determinants), and a pivoted LU solve for
// general square systems. Inputs here are small (p×p with p up to ~1000), so
// O(p³) dense algorithms with good constants are the right tool.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dense"
)

// ErrNotPD is returned by Cholesky when the matrix is not positive definite.
var ErrNotPD = errors.New("linalg: matrix not positive definite")

// EigSym computes the eigendecomposition of a symmetric n×n matrix using the
// cyclic Jacobi method. It returns eigenvalues in descending order and the
// matching eigenvectors as columns of V (A = V diag(vals) Vᵀ).
func EigSym(a *dense.Dense) (vals []float64, vecs *dense.Dense, err error) {
	n := a.R
	if a.C != n {
		return nil, nil, fmt.Errorf("linalg: EigSym on %dx%d matrix", a.R, a.C)
	}
	// Verify symmetry up to round-off; Jacobi silently corrupts results on
	// asymmetric input.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Abs(a.At(i, j) - a.At(j, i))
			scale := math.Abs(a.At(i, j)) + math.Abs(a.At(j, i)) + 1
			if d > 1e-8*scale {
				return nil, nil, fmt.Errorf("linalg: EigSym on asymmetric matrix (|a[%d,%d]-a[%d,%d]|=%g)", i, j, j, i, d)
			}
		}
	}
	w := a.Clone()
	v := dense.Identity(n)
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < 1e-14*(1+frobNorm(w)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				jacobiRotate(w, v, p, q)
			}
		}
	}
	vals = make([]float64, n)
	for i := range vals {
		vals[i] = w.At(i, i)
	}
	// Sort descending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	vecs = dense.New(n, n)
	for c, id := range idx {
		sortedVals[c] = vals[id]
		for r := 0; r < n; r++ {
			vecs.Set(r, c, v.At(r, id))
		}
	}
	return sortedVals, vecs, nil
}

func jacobiRotate(w, v *dense.Dense, p, q int) {
	apq := w.At(p, q)
	if apq == 0 {
		return
	}
	app, aqq := w.At(p, p), w.At(q, q)
	theta := (aqq - app) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c
	n := w.R
	for k := 0; k < n; k++ {
		wkp, wkq := w.At(k, p), w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk, wqk := w.At(p, k), w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func offDiagNorm(w *dense.Dense) float64 {
	var s float64
	for i := 0; i < w.R; i++ {
		for j := 0; j < w.C; j++ {
			if i != j {
				s += w.At(i, j) * w.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

func frobNorm(w *dense.Dense) float64 {
	var s float64
	for _, v := range w.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Cholesky factors a symmetric positive-definite matrix as A = L Lᵀ and
// returns lower-triangular L.
func Cholesky(a *dense.Dense) (*dense.Dense, error) {
	n := a.R
	if a.C != n {
		return nil, fmt.Errorf("linalg: Cholesky on %dx%d matrix", a.R, a.C)
	}
	l := dense.New(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d = %g)", ErrNotPD, j, d)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

// SolveChol solves A x = b for each column of b given the Cholesky factor L
// of A, via forward then backward substitution.
func SolveChol(l *dense.Dense, b *dense.Dense) *dense.Dense {
	n := l.R
	x := b.Clone()
	// Forward: L y = b.
	for c := 0; c < x.C; c++ {
		for i := 0; i < n; i++ {
			s := x.At(i, c)
			for k := 0; k < i; k++ {
				s -= l.At(i, k) * x.At(k, c)
			}
			x.Set(i, c, s/l.At(i, i))
		}
		// Backward: Lᵀ x = y.
		for i := n - 1; i >= 0; i-- {
			s := x.At(i, c)
			for k := i + 1; k < n; k++ {
				s -= l.At(k, i) * x.At(k, c)
			}
			x.Set(i, c, s/l.At(i, i))
		}
	}
	return x
}

// InvSPD inverts a symmetric positive-definite matrix via Cholesky.
func InvSPD(a *dense.Dense) (*dense.Dense, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return SolveChol(l, dense.Identity(a.R)), nil
}

// LogDetChol returns log(det(A)) from the Cholesky factor L of A.
func LogDetChol(l *dense.Dense) float64 {
	var s float64
	for i := 0; i < l.R; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}

// Solve solves the general square system A x = b (b may have many columns)
// by LU decomposition with partial pivoting.
func Solve(a, b *dense.Dense) (*dense.Dense, error) {
	n := a.R
	if a.C != n {
		return nil, fmt.Errorf("linalg: Solve with %dx%d matrix", a.R, a.C)
	}
	if b.R != n {
		return nil, fmt.Errorf("linalg: Solve rhs has %d rows, want %d", b.R, n)
	}
	lu := a.Clone()
	x := b.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		best := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > best {
				best, p = v, r
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if p != col {
			swapRows(lu, p, col)
			swapRows(x, p, col)
			piv[p], piv[col] = piv[col], piv[p]
		}
		pivVal := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / pivVal
			if f == 0 {
				continue
			}
			lu.Set(r, col, f)
			for c := col + 1; c < n; c++ {
				lu.Set(r, c, lu.At(r, c)-f*lu.At(col, c))
			}
			for c := 0; c < x.C; c++ {
				x.Set(r, c, x.At(r, c)-f*x.At(col, c))
			}
		}
	}
	// Back substitution.
	for c := 0; c < x.C; c++ {
		for i := n - 1; i >= 0; i-- {
			s := x.At(i, c)
			for k := i + 1; k < n; k++ {
				s -= lu.At(i, k) * x.At(k, c)
			}
			x.Set(i, c, s/lu.At(i, i))
		}
	}
	return x, nil
}

func swapRows(d *dense.Dense, i, j int) {
	ri, rj := d.Row(i), d.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// SqrtSPD returns the symmetric square root A^(1/2) = V diag(sqrt(λ)) Vᵀ of
// a symmetric positive semi-definite matrix, clamping tiny negative
// eigenvalues from round-off to zero. MASS's mvrnorm uses exactly this
// construction.
func SqrtSPD(a *dense.Dense) (*dense.Dense, error) {
	vals, vecs, err := EigSym(a)
	if err != nil {
		return nil, err
	}
	n := a.R
	tol := 1e-9 * math.Max(1, math.Abs(vals[0]))
	d := dense.New(n, n)
	for i, v := range vals {
		if v < -tol {
			return nil, fmt.Errorf("linalg: SqrtSPD with negative eigenvalue %g", v)
		}
		if v < 0 {
			v = 0
		}
		d.Set(i, i, math.Sqrt(v))
	}
	return dense.MatMul(dense.MatMul(vecs, d), vecs.T()), nil
}
