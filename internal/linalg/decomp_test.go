package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
)

func randTall(rng *rand.Rand, m, n int) *dense.Dense {
	d := dense.New(m, n)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

// TestQRReconstruction property-tests Q R == A, orthonormal Q, upper R.
func TestQRReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := n + rng.Intn(20)
		a := randTall(rng, m, n)
		q, r, err := QR(a)
		if err != nil {
			return false
		}
		if !dense.Equalish(dense.MatMul(q, r), a, 1e-9) {
			return false
		}
		if !dense.Equalish(dense.CrossProd(q, q), dense.Identity(n), 1e-9) {
			return false
		}
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, _, err := QR(dense.New(2, 5)); err == nil {
		t.Fatal("wide matrix accepted")
	}
}

// TestSolveQRLeastSquares: on a consistent system, QR recovers the exact
// solution; on an overdetermined noisy one, the residual is orthogonal to
// the column space.
func TestSolveQRLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const m, n = 60, 4
	a := randTall(rng, m, n)
	wTrue := dense.FromSlice(n, 1, []float64{1, -2, 0.5, 3})
	b := dense.MatMul(a, wTrue)
	x, err := SolveQR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equalish(x, wTrue, 1e-9) {
		t.Fatalf("exact solve: %v", x.Data)
	}
	// Noisy case: Aᵀ(Ax - b) ≈ 0.
	for i := range b.Data {
		b.Data[i] += rng.NormFloat64() * 0.1
	}
	x, err = SolveQR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	resid := dense.Sub(dense.MatMul(a, x), b)
	normalEq := dense.CrossProd(a, resid)
	for _, v := range normalEq.Data {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("residual not orthogonal: %v", normalEq.Data)
		}
	}
}

// TestSVDThinReconstruction property-tests U S Vᵀ == A and orthonormality.
func TestSVDThinReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(15)
		a := randTall(rng, m, n)
		u, s, v, err := SVDThin(a)
		if err != nil {
			return false
		}
		// Descending singular values.
		for i := 1; i < n; i++ {
			if s[i] > s[i-1]+1e-9 {
				return false
			}
		}
		us := dense.New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				us.Set(i, j, u.At(i, j)*s[j])
			}
		}
		if !dense.Equalish(dense.MatMul(us, v.T()), a, 1e-7) {
			return false
		}
		return dense.Equalish(dense.CrossProd(u, u), dense.Identity(n), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Two identical columns → one zero singular value.
	a := dense.FromRows([][]float64{
		{1, 1}, {2, 2}, {3, 3}, {-1, -1},
	})
	_, s, _, err := SVDThin(a)
	if err != nil {
		t.Fatal(err)
	}
	if s[1] != 0 {
		t.Fatalf("rank-1 matrix has s=%v", s)
	}
	if math.Abs(s[0]-math.Sqrt(2*(1+4+9+1))) > 1e-9 {
		t.Fatalf("s0=%g", s[0])
	}
}
