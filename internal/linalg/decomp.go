package linalg

import (
	"fmt"
	"math"

	"repro/internal/dense"
)

// QR computes the thin QR decomposition of an m×n matrix (m ≥ n) by
// Householder reflections: A = Q R with Q m×n orthonormal columns and R n×n
// upper triangular. The algorithm layer uses it for numerically-stable
// least squares (linear regression on ill-conditioned designs).
func QR(a *dense.Dense) (q, r *dense.Dense, err error) {
	m, n := a.R, a.C
	if m < n {
		return nil, nil, fmt.Errorf("linalg: QR needs m >= n, got %dx%d", m, n)
	}
	// Work on a copy; accumulate the Householder vectors in-place.
	w := a.Clone()
	vs := make([][]float64, n)
	for k := 0; k < n; k++ {
		// Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm += w.At(i, k) * w.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, nil, fmt.Errorf("linalg: rank-deficient matrix at column %d", k)
		}
		alpha := -math.Copysign(norm, w.At(k, k))
		v := make([]float64, m-k)
		v[0] = w.At(k, k) - alpha
		for i := k + 1; i < m; i++ {
			v[i-k] = w.At(i, k)
		}
		var vnorm float64
		for _, x := range v {
			vnorm += x * x
		}
		if vnorm == 0 {
			vs[k] = v
			w.Set(k, k, alpha)
			continue
		}
		// Apply the reflector to the remaining columns.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * w.At(i, j)
			}
			f := 2 * dot / vnorm
			for i := k; i < m; i++ {
				w.Set(i, j, w.At(i, j)-f*v[i-k])
			}
		}
		vs[k] = v
	}
	// R is the upper triangle of w.
	r = dense.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, w.At(i, j))
		}
	}
	// Q = H_0 H_1 … H_{n-1} applied to the first n columns of I.
	q = dense.New(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		var vnorm float64
		for _, x := range v {
			vnorm += x * x
		}
		if vnorm == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * q.At(i, j)
			}
			f := 2 * dot / vnorm
			for i := k; i < m; i++ {
				q.Set(i, j, q.At(i, j)-f*v[i-k])
			}
		}
	}
	return q, r, nil
}

// SolveQR solves the least-squares problem min ||A x - b|| via the thin QR:
// x = R⁻¹ Qᵀ b.
func SolveQR(a, b *dense.Dense) (*dense.Dense, error) {
	q, r, err := QR(a)
	if err != nil {
		return nil, err
	}
	qtb := dense.CrossProd(q, b) // n×rhs
	// Back-substitute R x = Qᵀb.
	n := r.R
	x := qtb.Clone()
	for c := 0; c < x.C; c++ {
		for i := n - 1; i >= 0; i-- {
			s := x.At(i, c)
			for k := i + 1; k < n; k++ {
				s -= r.At(i, k) * x.At(k, c)
			}
			if r.At(i, i) == 0 {
				return nil, fmt.Errorf("linalg: singular R in QR solve")
			}
			x.Set(i, c, s/r.At(i, i))
		}
	}
	return x, nil
}

// SVDThin computes the thin singular value decomposition of an m×n matrix
// with m ≥ n: A = U diag(s) Vᵀ, via the eigendecomposition of AᵀA (the same
// Gramian route the paper's PCA takes). Singular values come back in
// descending order; tiny trailing values are clamped to zero.
func SVDThin(a *dense.Dense) (u *dense.Dense, s []float64, v *dense.Dense, err error) {
	m, n := a.R, a.C
	if m < n {
		return nil, nil, nil, fmt.Errorf("linalg: SVDThin needs m >= n, got %dx%d", m, n)
	}
	gram := dense.CrossProd(a, a)
	vals, vecs, err := EigSym(gram)
	if err != nil {
		return nil, nil, nil, err
	}
	s = make([]float64, n)
	tol := 1e-12 * math.Max(1, math.Abs(vals[0]))
	for i, ev := range vals {
		if ev < tol {
			s[i] = 0
		} else {
			s[i] = math.Sqrt(ev)
		}
	}
	v = vecs
	// U = A V diag(1/s) for the nonzero singular values.
	av := dense.MatMul(a, v)
	u = dense.New(m, n)
	for j := 0; j < n; j++ {
		if s[j] == 0 {
			continue
		}
		inv := 1 / s[j]
		for i := 0; i < m; i++ {
			u.Set(i, j, av.At(i, j)*inv)
		}
	}
	return u, s, v, nil
}
