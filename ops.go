package flashr

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dense"
)

// Every operation in this file comes in two spellings: TryXxx returns
// (*FM, error) and reports malformed input as a *Error; Xxx is the R-style
// panicking shorthand, implemented as must(TryXxx(...)), whose panic value
// is that same *Error. Use the Try* forms in long-running services, the
// short forms in scripts and algorithms (as the paper's R code would).

// operand normalizes an argument that may be an *FM or a Go number.
type operand struct {
	fm     *FM
	scalar float64
	isNum  bool
}

func tryAsOperand(op string, v any) (operand, error) {
	switch t := v.(type) {
	case *FM:
		return operand{fm: t}, nil
	case float64:
		return operand{scalar: t, isNum: true}, nil
	case int:
		return operand{scalar: float64(t), isNum: true}, nil
	case int64:
		return operand{scalar: float64(t), isNum: true}, nil
	default:
		return operand{}, errf(op, nil, "operand type %T (want *FM, float64 or int)", v)
	}
}

// tryBinOp implements every elementwise binary R function of Table 2: it
// dispatches on operand classes (big/small/scalar) and stays lazy whenever a
// big matrix is involved.
func tryBinOp(op string, x, y any, f *core.Binary) (*FM, error) {
	a, err := tryAsOperand(op, x)
	if err != nil {
		return nil, err
	}
	b, err := tryAsOperand(op, y)
	if err != nil {
		return nil, err
	}
	switch {
	case a.isNum && b.isNum:
		return nil, errf(op, nil, "binary op needs at least one matrix")
	case a.isNum:
		return tryScalarOp(b.fm, a.scalar, f, true)
	case b.isNum:
		return tryScalarOp(a.fm, b.scalar, f, false)
	}
	xa, yb := a.fm, b.fm
	if xa.s != yb.s {
		return nil, errf(op, nil, "operands belong to different sessions")
	}
	s := xa.s
	// 1×1 operands degrade to scalars.
	if r, c := yb.dims(); r == 1 && c == 1 && !yb.isBig() {
		d, err := yb.resolveSmall()
		if err != nil {
			return nil, err
		}
		return tryScalarOp(xa, d.Data[0], f, false)
	}
	if r, c := xa.dims(); r == 1 && c == 1 && !xa.isBig() {
		d, err := xa.resolveSmall()
		if err != nil {
			return nil, err
		}
		return tryScalarOp(yb, d.Data[0], f, true)
	}
	ar, ac := xa.dims()
	br, bc := yb.dims()
	if ar != br || ac != bc {
		return nil, errf(op, shapesOf(xa, yb), "elementwise shape mismatch")
	}
	switch {
	case !xa.isBig() && !yb.isBig():
		da, err := xa.resolveSmall()
		if err != nil {
			return nil, err
		}
		db, err := yb.resolveSmall()
		if err != nil {
			return nil, err
		}
		out := dense.New(da.R, da.C)
		for i := range out.Data {
			out.Data[i] = f.F(da.Data[i], db.Data[i])
		}
		return s.smallFM(out), nil
	case xa.isBig() && yb.isBig():
		if xa.trans != yb.trans {
			return nil, errf(op, shapesOf(xa, yb), "elementwise op mixing a transposed and a non-transposed large matrix")
		}
		out := s.bigFM(core.Mapply(xa.big, yb.big, f))
		out.trans = xa.trans
		return out, nil
	default:
		// One big, one small with the same logical shape: promote the
		// small one into the engine.
		big, small := xa, yb
		swapped := false
		if !big.isBig() {
			big, small = yb, xa
			swapped = true
		}
		if big.trans {
			return nil, errf(op, shapesOf(xa, yb), "elementwise op between transposed large matrix and small matrix")
		}
		pm, err := small.promote()
		if err != nil {
			return nil, err
		}
		if swapped {
			return s.bigFM(core.Mapply(pm, big.big, f)), nil
		}
		return s.bigFM(core.Mapply(big.big, pm, f)), nil
	}
}

func tryScalarOp(x *FM, sc float64, f *core.Binary, scalarLeft bool) (*FM, error) {
	if x.isBig() {
		out := x.s.bigFM(core.MapplyScalar(x.big, sc, f, scalarLeft))
		out.trans = x.trans
		return out, nil
	}
	d, err := x.resolveSmall()
	if err != nil {
		return nil, err
	}
	out := dense.New(d.R, d.C)
	for i, v := range d.Data {
		if scalarLeft {
			out.Data[i] = f.F(sc, v)
		} else {
			out.Data[i] = f.F(v, sc)
		}
	}
	return x.s.smallFM(out), nil
}

// TryAdd is R's "+" (elementwise; either argument may be a scalar).
func TryAdd(x, y any) (*FM, error) { return tryBinOp("add", x, y, core.BinAdd) }

// Add is TryAdd's panicking shorthand.
func Add(x, y any) *FM { return must(TryAdd(x, y)) }

// TrySub is R's "-".
func TrySub(x, y any) (*FM, error) { return tryBinOp("sub", x, y, core.BinSub) }

// Sub is TrySub's panicking shorthand.
func Sub(x, y any) *FM { return must(TrySub(x, y)) }

// TryMul is R's "*" (Hadamard product).
func TryMul(x, y any) (*FM, error) { return tryBinOp("mul", x, y, core.BinMul) }

// Mul is TryMul's panicking shorthand.
func Mul(x, y any) *FM { return must(TryMul(x, y)) }

// TryDiv is R's "/".
func TryDiv(x, y any) (*FM, error) { return tryBinOp("div", x, y, core.BinDiv) }

// Div is TryDiv's panicking shorthand.
func Div(x, y any) *FM { return must(TryDiv(x, y)) }

// TryPow is R's "^".
func TryPow(x, y any) (*FM, error) { return tryBinOp("pow", x, y, core.BinPow) }

// Pow is TryPow's panicking shorthand.
func Pow(x, y any) *FM { return must(TryPow(x, y)) }

// TryMod is R's "%%".
func TryMod(x, y any) (*FM, error) { return tryBinOp("mod", x, y, core.BinMod) }

// Mod is TryMod's panicking shorthand.
func Mod(x, y any) *FM { return must(TryMod(x, y)) }

// TryPmin is R's pmin.
func TryPmin(x, y any) (*FM, error) { return tryBinOp("pmin", x, y, core.BinPmin) }

// Pmin is TryPmin's panicking shorthand.
func Pmin(x, y any) *FM { return must(TryPmin(x, y)) }

// TryPmax is R's pmax.
func TryPmax(x, y any) (*FM, error) { return tryBinOp("pmax", x, y, core.BinPmax) }

// Pmax is TryPmax's panicking shorthand.
func Pmax(x, y any) *FM { return must(TryPmax(x, y)) }

// TryEq is R's "==" (1/0 valued result).
func TryEq(x, y any) (*FM, error) { return tryBinOp("eq", x, y, core.BinEq) }

// Eq is TryEq's panicking shorthand.
func Eq(x, y any) *FM { return must(TryEq(x, y)) }

// TryNe is R's "!=".
func TryNe(x, y any) (*FM, error) { return tryBinOp("ne", x, y, core.BinNe) }

// Ne is TryNe's panicking shorthand.
func Ne(x, y any) *FM { return must(TryNe(x, y)) }

// TryLt is R's "<".
func TryLt(x, y any) (*FM, error) { return tryBinOp("lt", x, y, core.BinLt) }

// Lt is TryLt's panicking shorthand.
func Lt(x, y any) *FM { return must(TryLt(x, y)) }

// TryLe is R's "<=".
func TryLe(x, y any) (*FM, error) { return tryBinOp("le", x, y, core.BinLe) }

// Le is TryLe's panicking shorthand.
func Le(x, y any) *FM { return must(TryLe(x, y)) }

// TryGt is R's ">".
func TryGt(x, y any) (*FM, error) { return tryBinOp("gt", x, y, core.BinGt) }

// Gt is TryGt's panicking shorthand.
func Gt(x, y any) *FM { return must(TryGt(x, y)) }

// TryGe is R's ">=".
func TryGe(x, y any) (*FM, error) { return tryBinOp("ge", x, y, core.BinGe) }

// Ge is TryGe's panicking shorthand.
func Ge(x, y any) *FM { return must(TryGe(x, y)) }

// TryAnd is R's "&".
func TryAnd(x, y any) (*FM, error) { return tryBinOp("and", x, y, core.BinAnd) }

// And is TryAnd's panicking shorthand.
func And(x, y any) *FM { return must(TryAnd(x, y)) }

// TryOr is R's "|".
func TryOr(x, y any) (*FM, error) { return tryBinOp("or", x, y, core.BinOr) }

// Or is TryOr's panicking shorthand.
func Or(x, y any) *FM { return must(TryOr(x, y)) }

// TryMapply is the binary GenOp with a named predefined function (Table 1).
func TryMapply(x, y any, fname string) (*FM, error) {
	f, err := core.LookupBinary(fname)
	if err != nil {
		return nil, errf("mapply", nil, "unknown binary function %q", fname)
	}
	return tryBinOp("mapply", x, y, f)
}

// Mapply is TryMapply's panicking shorthand.
func Mapply(x, y any, fname string) *FM { return must(TryMapply(x, y, fname)) }

func tryUnOp(x *FM, f *core.Unary) (*FM, error) {
	if x.isBig() {
		out := x.s.bigFM(core.Sapply(x.big, f))
		out.trans = x.trans
		return out, nil
	}
	d, err := x.resolveSmall()
	if err != nil {
		return nil, err
	}
	return x.s.smallFM(d.Apply(f.F)), nil
}

func unOp(x *FM, f *core.Unary) *FM { return must(tryUnOp(x, f)) }

// TrySapply is the unary GenOp with a named predefined function.
func TrySapply(x *FM, fname string) (*FM, error) {
	f, err := core.LookupUnary(fname)
	if err != nil {
		return nil, errf("sapply", nil, "unknown unary function %q", fname)
	}
	return tryUnOp(x, f)
}

// Sapply is TrySapply's panicking shorthand.
func Sapply(x *FM, fname string) *FM { return must(TrySapply(x, fname)) }

// Neg is unary "-".
func Neg(x *FM) *FM { return unOp(x, core.UnaryNeg) }

// Not is R's "!".
func Not(x *FM) *FM { return unOp(x, core.UnaryNot) }

// Sqrt is R's sqrt.
func Sqrt(x *FM) *FM { return unOp(x, core.UnarySqrt) }

// Exp is R's exp.
func Exp(x *FM) *FM { return unOp(x, core.UnaryExp) }

// Log is R's log.
func Log(x *FM) *FM { return unOp(x, core.UnaryLog) }

// Log1p is R's log1p.
func Log1p(x *FM) *FM { return unOp(x, core.UnaryLog1p) }

// Abs is R's abs.
func Abs(x *FM) *FM { return unOp(x, core.UnaryAbs) }

// Floor is R's floor.
func Floor(x *FM) *FM { return unOp(x, core.UnaryFloor) }

// Ceiling is R's ceiling.
func Ceiling(x *FM) *FM { return unOp(x, core.UnaryCeil) }

// Round is R's round.
func Round(x *FM) *FM { return unOp(x, core.UnaryRound) }

// Sign is R's sign.
func Sign(x *FM) *FM { return unOp(x, core.UnarySign) }

// Sigmoid computes 1/(1+exp(-x)) in one fused kernel.
func Sigmoid(x *FM) *FM { return unOp(x, core.UnarySigmoid) }

// Square computes x*x.
func Square(x *FM) *FM { return unOp(x, core.UnarySquare) }

// tryAggF builds the full-matrix aggregation, lazily for big matrices.
func tryAggF(x *FM, f *core.AggFunc) (*FM, error) {
	if x.isBig() {
		return x.s.sinkFM(core.Agg(x.big, f)), nil
	}
	d, err := x.resolveSmall()
	if err != nil {
		return nil, err
	}
	acc := f.Init
	acc = f.StepV(acc, d.Data)
	return x.s.smallFM(dense.FromSlice(1, 1, []float64{acc})), nil
}

func aggF(x *FM, f *core.AggFunc) *FM { return must(tryAggF(x, f)) }

// TryAgg is agg(A, f) from Table 1: a scalar fold with a named function.
func TryAgg(x *FM, fname string) (*FM, error) {
	f, err := core.LookupAgg(fname)
	if err != nil {
		return nil, errf("agg", nil, "unknown aggregation function %q", fname)
	}
	return tryAggF(x, f)
}

// Agg is TryAgg's panicking shorthand.
func Agg(x *FM, fname string) *FM { return must(TryAgg(x, fname)) }

// Sum is R's sum; the result is a lazy 1×1 matrix (force with Float or
// AsVector, as the paper's examples do).
func Sum(x *FM) *FM { return aggF(x, core.AggSum) }

// Prod is R's prod.
func Prod(x *FM) *FM { return aggF(x, core.AggProd) }

// Min is R's min over all elements.
func Min(x *FM) *FM { return aggF(x, core.AggMin) }

// Max is R's max over all elements.
func Max(x *FM) *FM { return aggF(x, core.AggMax) }

// Any is R's any (on a 0/1 matrix).
func Any(x *FM) *FM { return aggF(x, core.AggAny) }

// All is R's all.
func All(x *FM) *FM { return aggF(x, core.AggAll) }

// Mean is R's mean over all elements.
func Mean(x *FM) *FM { return Div(Sum(x), float64(x.Length())) }

// RowSums aggregates every row; on a tall matrix this keeps the partition
// dimension (an n×1 tall matrix).
func RowSums(x *FM) *FM { return must(tryAggRowF(x, core.AggSum)) }

// RowMeans is R's rowMeans.
func RowMeans(x *FM) *FM {
	_, c := x.dims()
	return Div(RowSums(x), float64(c))
}

// ColSums aggregates every column; on a tall matrix the result is a sink
// (1×p, held in memory).
func ColSums(x *FM) *FM { return must(tryAggColF(x, core.AggSum)) }

// ColMeans is R's colMeans.
func ColMeans(x *FM) *FM {
	r, _ := x.dims()
	return Div(ColSums(x), float64(r))
}

// TryAggRow is agg.row(A, f) with a named function.
func TryAggRow(x *FM, fname string) (*FM, error) {
	f, err := core.LookupAgg(fname)
	if err != nil {
		return nil, errf("agg.row", nil, "unknown aggregation function %q", fname)
	}
	return tryAggRowF(x, f)
}

// AggRow is TryAggRow's panicking shorthand.
func AggRow(x *FM, fname string) *FM { return must(TryAggRow(x, fname)) }

// TryAggCol is agg.col(A, f) with a named function.
func TryAggCol(x *FM, fname string) (*FM, error) {
	f, err := core.LookupAgg(fname)
	if err != nil {
		return nil, errf("agg.col", nil, "unknown aggregation function %q", fname)
	}
	return tryAggColF(x, f)
}

// AggCol is TryAggCol's panicking shorthand.
func AggCol(x *FM, fname string) *FM { return must(TryAggCol(x, fname)) }

func tryAggRowF(x *FM, f *core.AggFunc) (*FM, error) {
	if x.isBig() {
		if x.trans {
			// Rows of the transpose are columns of the original.
			return x.s.sinkFM(core.AggCol(x.big, f)).T(), nil
		}
		return x.s.bigFM(core.AggRow(x.big, f)), nil
	}
	d, err := x.resolveSmall()
	if err != nil {
		return nil, err
	}
	out := dense.New(d.R, 1)
	for i := 0; i < d.R; i++ {
		out.Data[i] = f.StepV(f.Init, d.Row(i))
	}
	return x.s.smallFM(out), nil
}

func tryAggColF(x *FM, f *core.AggFunc) (*FM, error) {
	if x.isBig() {
		if x.trans {
			return x.s.bigFM(core.AggRow(x.big, f)).T(), nil
		}
		return x.s.sinkFM(core.AggCol(x.big, f)), nil
	}
	d, err := x.resolveSmall()
	if err != nil {
		return nil, err
	}
	out := dense.New(1, d.C)
	for j := 0; j < d.C; j++ {
		acc := f.Init
		for i := 0; i < d.R; i++ {
			acc = f.Step(acc, d.At(i, j))
		}
		out.Data[j] = acc
	}
	return x.s.smallFM(out), nil
}

// TryRowWhichMin returns the 0-based index of each row's minimum (R's
// which.min per row, shifted to 0-based so the result feeds GroupByRow
// directly).
func TryRowWhichMin(x *FM) (*FM, error) {
	if !x.isBig() || x.trans {
		return nil, errf("row.which.min", shapesOf(x), "needs a non-transposed large matrix")
	}
	return x.s.bigFM(core.WhichMinRow(x.big)), nil
}

// RowWhichMin is TryRowWhichMin's panicking shorthand.
func RowWhichMin(x *FM) *FM { return must(TryRowWhichMin(x)) }

// TryRowWhichMax returns the 0-based index of each row's maximum.
func TryRowWhichMax(x *FM) (*FM, error) {
	if !x.isBig() || x.trans {
		return nil, errf("row.which.max", shapesOf(x), "needs a non-transposed large matrix")
	}
	return x.s.bigFM(core.WhichMaxRow(x.big)), nil
}

// RowWhichMax is TryRowWhichMax's panicking shorthand.
func RowWhichMax(x *FM) *FM { return must(TryRowWhichMax(x)) }

// TryGroupByRow is groupby.row(A, B, f): rows of x grouped by the n×1 label
// matrix (0-based labels in [0,k)) and aggregated per column into a k×p sink.
func TryGroupByRow(x, labels *FM, k int, fname string) (*FM, error) {
	f, err := core.LookupAgg(fname)
	if err != nil {
		return nil, errf("groupby.row", nil, "unknown aggregation function %q", fname)
	}
	if !x.isBig() || x.trans {
		return nil, errf("groupby.row", shapesOf(x), "needs a non-transposed large matrix")
	}
	lb, err := labels.promote()
	if err != nil {
		return nil, err
	}
	return x.s.sinkFM(core.GroupByRow(x.big, lb, k, f)), nil
}

// GroupByRow is TryGroupByRow's panicking shorthand.
func GroupByRow(x, labels *FM, k int, fname string) *FM {
	return must(TryGroupByRow(x, labels, k, fname))
}

// TryGroupByCol is groupby.col(A, B, f): columns grouped by labels[j] ∈
// [0,k), aggregated within each row; the n×k result keeps the partition
// dimension.
func TryGroupByCol(x *FM, labels []int, k int, fname string) (*FM, error) {
	f, err := core.LookupAgg(fname)
	if err != nil {
		return nil, errf("groupby.col", nil, "unknown aggregation function %q", fname)
	}
	if !x.isBig() || x.trans {
		return nil, errf("groupby.col", shapesOf(x), "needs a non-transposed large matrix")
	}
	return x.s.bigFM(core.GroupByCol(x.big, labels, k, f)), nil
}

// GroupByCol is TryGroupByCol's panicking shorthand.
func GroupByCol(x *FM, labels []int, k int, fname string) *FM {
	return must(TryGroupByCol(x, labels, k, fname))
}

// TryInnerProd is the generalized matrix multiplication GenOp: x (tall n×p)
// against a small matrix y (p×m), with named f1/f2 (e.g. "euclidean", "+"
// computes squared distances as in the paper's k-means).
func TryInnerProd(x, y *FM, f1name, f2name string) (*FM, error) {
	f1, err := core.LookupBinary(f1name)
	if err != nil {
		return nil, errf("inner.prod", nil, "unknown binary function %q", f1name)
	}
	f2, err := core.LookupBinary(f2name)
	if err != nil {
		return nil, errf("inner.prod", nil, "unknown binary function %q", f2name)
	}
	if !x.isBig() || x.trans {
		return nil, errf("inner.prod", shapesOf(x, y), "needs a non-transposed large left operand")
	}
	d, err := y.resolveSmall()
	if err != nil {
		return nil, err
	}
	return x.s.bigFM(core.InnerProd(x.big, d, f1, f2)), nil
}

// InnerProd is TryInnerProd's panicking shorthand.
func InnerProd(x, y *FM, f1name, f2name string) *FM {
	return must(TryInnerProd(x, y, f1name, f2name))
}

// TryMatMul is R's %*%. Supported operand shapes mirror how the paper's
// algorithms use multiplication on tall data:
//
//   - big %*% small           → streaming inner product (n×m tall result)
//   - t(big) %*% big          → crossprod sink (p×m small result)
//   - t(big) %*% small        → not meaningful on shapes; rejected
//   - small %*% small         → eager BLAS
//   - small %*% t(big)        → transposed inner product (view)
//
// Float matrices use the BLAS kernel; integer matrices use the generalized
// inner-product GenOp, per Table 2.
func TryMatMul(x, y *FM) (*FM, error) {
	const op = "%*%"
	s := x.s
	switch {
	case x.isBig() && !x.trans:
		// Right operand must be small (p×m).
		d, err := y.resolveSmall()
		if err != nil {
			return nil, errf(op, shapesOf(x, y), "of two tall matrices is t(A)%%*%%B-shaped only")
		}
		if int64(d.R) != x.NCol() {
			return nil, errf(op, shapesOf(x, y), "dimension mismatch")
		}
		return s.bigFM(core.InnerProd(x.big, d, mmF1(x), mmF2(x))), nil
	case x.isBig() && x.trans:
		// t(A) %*% B with B tall: crossprod sink.
		if y.isBig() && !y.trans {
			if x.big.NRow() != y.big.NRow() {
				return nil, errf(op, shapesOf(x, y), "crossprod row mismatch")
			}
			return s.sinkFM(core.CrossProd(x.big, y.big, mmF1(x), mmF2(x))), nil
		}
		if !y.isBig() {
			d, err := y.resolveSmall()
			if err != nil {
				return nil, err
			}
			if int64(d.R) != x.big.NRow() {
				return nil, errf(op, shapesOf(x, y), "dimension mismatch")
			}
			// t(A) %*% small: promote the small right operand.
			pm, err := y.promote()
			if err != nil {
				return nil, err
			}
			return s.sinkFM(core.CrossProd(x.big, pm, mmF1(x), mmF2(x))), nil
		}
		return nil, errf(op, shapesOf(x, y), "t(A) %%*%% t(B) on two tall matrices not supported")
	default:
		// Small left operand.
		da, err := x.resolveSmall()
		if err != nil {
			return nil, err
		}
		if !y.isBig() {
			db, err := y.resolveSmall()
			if err != nil {
				return nil, err
			}
			if da.C != db.R {
				return nil, errf(op, shapesOf(x, y), "dimension mismatch")
			}
			return s.smallFM(dense.MatMul(da, db)), nil
		}
		if y.trans {
			// small(m×p) %*% t(big n×p) = t( big %*% t(small) ): stream.
			ip := core.InnerProd(y.big, da.T(), mmF1(y), mmF2(y))
			out := s.bigFM(ip)
			return out.T(), nil
		}
		return nil, errf(op, shapesOf(x, y), "small %%*%% tall is shape-invalid")
	}
}

// MatMul is TryMatMul's panicking shorthand.
func MatMul(x, y *FM) *FM { return must(TryMatMul(x, y)) }

// mmF1/mmF2 select the multiply kernel per Table 2: BLAS (nil) for floats,
// the generalized GenOp for integer matrices.
func mmF1(x *FM) *core.Binary {
	if x.big != nil && x.big.DType() != 0 { // non-F64
		return core.BinMul
	}
	return nil
}

func mmF2(x *FM) *core.Binary {
	if x.big != nil && x.big.DType() != 0 {
		return core.BinAdd
	}
	return nil
}

// TryCrossProd computes t(x) %*% x (R's crossprod), a p×p sink on tall input.
func TryCrossProd(x *FM) (*FM, error) { return TryCrossProd2(x, x) }

// CrossProd is TryCrossProd's panicking shorthand.
func CrossProd(x *FM) *FM { return must(TryCrossProd(x)) }

// TryCrossProd2 computes t(x) %*% y.
func TryCrossProd2(x, y *FM) (*FM, error) {
	if x.isBig() && y.isBig() && !x.trans && !y.trans {
		if x.big.NRow() != y.big.NRow() {
			return nil, errf("crossprod", shapesOf(x, y), "row mismatch")
		}
		return x.s.sinkFM(core.CrossProd(x.big, y.big, mmF1(x), mmF2(x))), nil
	}
	return TryMatMul(x.T(), y)
}

// CrossProd2 is TryCrossProd2's panicking shorthand.
func CrossProd2(x, y *FM) *FM { return must(TryCrossProd2(x, y)) }

// TrySweep is R's sweep(x, margin, v, f): margin 2 sweeps a length-p vector
// along every row; margin 1 sweeps a length-n vector (an n×1 matrix,
// possibly tall) down every column.
func TrySweep(x *FM, margin int, v *FM, fname string) (*FM, error) {
	f, err := core.LookupBinary(fname)
	if err != nil {
		return nil, errf("sweep", nil, "unknown binary function %q", fname)
	}
	if margin != 1 && margin != 2 {
		return nil, errf("sweep", shapesOf(x, v), "margin must be 1 or 2, got %d", margin)
	}
	if !x.isBig() {
		d, err := x.resolveSmall()
		if err != nil {
			return nil, err
		}
		vd, err := v.resolveSmall()
		if err != nil {
			return nil, err
		}
		if margin == 2 {
			return x.s.smallFM(d.SweepRows(vd.Data, f.F)), nil
		}
		return x.s.smallFM(d.SweepCols(vd.Data, f.F)), nil
	}
	if x.trans {
		return nil, errf("sweep", shapesOf(x, v), "sweep on transposed large matrix")
	}
	if margin == 2 {
		vd, err := v.resolveSmall()
		if err != nil {
			return nil, err
		}
		return x.s.bigFM(core.MapplyRowVec(x.big, vd.Data, f, false)), nil
	}
	vb, err := v.promote()
	if err != nil {
		return nil, err
	}
	return x.s.bigFM(core.MapplyColVec(x.big, vb, f, false)), nil
}

// Sweep is TrySweep's panicking shorthand.
func Sweep(x *FM, margin int, v *FM, fname string) *FM {
	return must(TrySweep(x, margin, v, fname))
}

// TryCumCol is the cumulative GenOp down each column (R's cumsum semantics
// per column on a matrix) with a named function.
func TryCumCol(x *FM, fname string) (*FM, error) {
	f, err := core.LookupAgg(fname)
	if err != nil {
		return nil, errf("cum.col", nil, "unknown aggregation function %q", fname)
	}
	if x.isBig() {
		if x.trans {
			return x.s.bigFM(core.CumRow(x.big, f)).T(), nil
		}
		return x.s.bigFM(core.CumCol(x.big, f)), nil
	}
	d, err := x.resolveSmall()
	if err != nil {
		return nil, err
	}
	out := dense.New(d.R, d.C)
	run := make([]float64, d.C)
	for j := range run {
		run[j] = f.Init
	}
	for i := 0; i < d.R; i++ {
		for j := 0; j < d.C; j++ {
			run[j] = f.Step(run[j], d.At(i, j))
			out.Set(i, j, run[j])
		}
	}
	return x.s.smallFM(out), nil
}

// CumCol is TryCumCol's panicking shorthand.
func CumCol(x *FM, fname string) *FM { return must(TryCumCol(x, fname)) }

// TryCumRow is the cumulative GenOp along each row.
func TryCumRow(x *FM, fname string) (*FM, error) {
	f, err := core.LookupAgg(fname)
	if err != nil {
		return nil, errf("cum.row", nil, "unknown aggregation function %q", fname)
	}
	if x.isBig() {
		if x.trans {
			return x.s.bigFM(core.CumCol(x.big, f)).T(), nil
		}
		return x.s.bigFM(core.CumRow(x.big, f)), nil
	}
	out, err := TryCumCol(x.T(), fname)
	if err != nil {
		return nil, err
	}
	return out.T(), nil
}

// CumRow is TryCumRow's panicking shorthand.
func CumRow(x *FM, fname string) *FM { return must(TryCumRow(x, fname)) }

// Cumsum on a one-column matrix (R's cumsum on a vector).
func Cumsum(x *FM) *FM { return CumCol(x, "+") }

// TryGetCols selects columns (R's x[, idx]); on tall matrices this is a
// virtual view whose blocked storage reads only the touched column blocks.
func TryGetCols(x *FM, cols []int) (*FM, error) {
	_, nc := x.dims()
	for _, c := range cols {
		if c < 0 || int64(c) >= nc {
			return nil, errf("get.cols", shapesOf(x), "column %d out of range [0,%d)", c, nc)
		}
	}
	if x.isBig() {
		if x.trans {
			return nil, errf("get.cols", shapesOf(x), "on transposed large matrix (select rows instead)")
		}
		return x.s.bigFM(core.Cols(x.big, cols)), nil
	}
	d, err := x.resolveSmall()
	if err != nil {
		return nil, err
	}
	out := dense.New(d.R, len(cols))
	for i := 0; i < d.R; i++ {
		for j, c := range cols {
			out.Set(i, j, d.At(i, c))
		}
	}
	return x.s.smallFM(out), nil
}

// GetCols is TryGetCols's panicking shorthand.
func GetCols(x *FM, cols []int) *FM { return must(TryGetCols(x, cols)) }

// GetCol selects a single column as an n×1 matrix.
func GetCol(x *FM, j int) *FM { return GetCols(x, []int{j}) }

// TryCbind concatenates matrices column-wise (R's cbind).
func TryCbind(xs ...*FM) (*FM, error) {
	if len(xs) == 0 {
		return nil, errf("cbind", nil, "cbind of nothing")
	}
	out := xs[0]
	for _, x := range xs[1:] {
		var err error
		out, err = tryCbind2(out, x)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Cbind is TryCbind's panicking shorthand.
func Cbind(xs ...*FM) *FM { return must(TryCbind(xs...)) }

func tryCbind2(x, y *FM) (*FM, error) {
	if x.NRow() != y.NRow() {
		return nil, errf("cbind", shapesOf(x, y), "row mismatch")
	}
	if x.isBig() || y.isBig() {
		xb, err := x.promote()
		if err != nil {
			return nil, err
		}
		yb, err := y.promote()
		if err != nil {
			return nil, err
		}
		return x.s.bigFM(core.Cbind2(xb, yb)), nil
	}
	dx, err := x.resolveSmall()
	if err != nil {
		return nil, err
	}
	dy, err := y.resolveSmall()
	if err != nil {
		return nil, err
	}
	out := dense.New(dx.R, dx.C+dy.C)
	for i := 0; i < dx.R; i++ {
		copy(out.Row(i)[:dx.C], dx.Row(i))
		copy(out.Row(i)[dx.C:], dy.Row(i))
	}
	return x.s.smallFM(out), nil
}

// TryRbind concatenates matrices row-wise (R's rbind). Tall operands are
// materialized and copied into a fresh store (the paper treats large matrix
// modification as out of scope, citing TileDB-style fragments as future
// work; a copy preserves semantics).
func TryRbind(xs ...*FM) (*FM, error) {
	if len(xs) == 0 {
		return nil, errf("rbind", nil, "rbind of nothing")
	}
	s := xs[0].s
	anyBig := false
	var totalRows int64
	cols := xs[0].NCol()
	for _, x := range xs {
		if x.NCol() != cols {
			return nil, errf("rbind", shapesOf(xs...), "column mismatch")
		}
		totalRows += x.NRow()
		anyBig = anyBig || x.isBig()
	}
	if !anyBig {
		rows := make([][]float64, 0, totalRows)
		for _, x := range xs {
			d, err := x.resolveSmall()
			if err != nil {
				return nil, err
			}
			for i := 0; i < d.R; i++ {
				rows = append(rows, d.Row(i))
			}
		}
		return s.smallFM(dense.FromRows(rows)), nil
	}
	parts := make([]*dense.Dense, len(xs))
	for i, x := range xs {
		d, err := x.AsDense()
		if err != nil {
			return nil, err
		}
		parts[i] = d
	}
	big := dense.New(int(totalRows), int(cols))
	off := 0
	for _, d := range parts {
		copy(big.Data[off:], d.Data)
		off += len(d.Data)
	}
	return s.FromDense(big)
}

// Rbind is TryRbind's panicking shorthand.
func Rbind(xs ...*FM) *FM { return must(TryRbind(xs...)) }

// TrySetCols is the functional form of R's `x[, cols] <- v`: it returns x
// with the given columns replaced by the columns of v. On tall matrices the
// result is a virtual matrix constructed on the fly (§3.1 of the paper); no
// copy of x is materialized.
func TrySetCols(x *FM, cols []int, v *FM) (*FM, error) {
	_, nc := x.dims()
	for _, c := range cols {
		if c < 0 || int64(c) >= nc {
			return nil, errf("set.cols", shapesOf(x, v), "column %d out of range [0,%d)", c, nc)
		}
	}
	if x.isBig() {
		if x.trans {
			return nil, errf("set.cols", shapesOf(x, v), "on transposed large matrix")
		}
		vb, err := v.promote()
		if err != nil {
			return nil, err
		}
		return x.s.bigFM(core.SetCols(x.big, vb, cols)), nil
	}
	d, err := x.resolveSmall()
	if err != nil {
		return nil, err
	}
	vd, err := v.resolveSmall()
	if err != nil {
		return nil, err
	}
	d = d.Clone()
	for i := 0; i < d.R; i++ {
		for j, c := range cols {
			d.Set(i, c, vd.At(i, j))
		}
	}
	return x.s.smallFM(d), nil
}

// SetCols is TrySetCols's panicking shorthand.
func SetCols(x *FM, cols []int, v *FM) *FM { return must(TrySetCols(x, cols, v)) }

// GroupBy is the generalized element groupby of Table 1: elements of x are
// grouped by value and folded with the named aggregation per group. Output
// size depends on the data, so it materializes immediately (like table).
func GroupBy(x *FM, fname string) (keys, folds []float64, err error) {
	f, err := core.LookupAgg(fname)
	if err != nil {
		return nil, nil, errf("groupby", nil, "unknown aggregation function %q", fname)
	}
	if x.isBig() {
		g := core.GroupByVal(x.big, f)
		if err := x.s.materializeNow(context.Background(), "", nil, []*core.Sink{g}); err != nil {
			return nil, nil, err
		}
		k, v := g.GroupByValResult()
		return k, v, nil
	}
	d, err := x.resolveSmall()
	if err != nil {
		return nil, nil, err
	}
	m := map[float64]float64{}
	for _, v := range d.Data {
		acc, ok := m[v]
		if !ok {
			acc = f.Init
		}
		m[v] = f.Step(acc, v)
	}
	for k := range m {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	folds = make([]float64, len(keys))
	for i, k := range keys {
		folds[i] = m[k]
	}
	return keys, folds, nil
}

// GetRows gathers arbitrary rows of x into a small in-memory matrix,
// touching only the I/O partitions that contain requested rows. (General
// large-matrix row shuffling is out of the paper's scope; this covers the
// R idiom x[idx, ] for moderate index sets.)
func GetRows(x *FM, idx []int64) (*dense.Dense, error) {
	r, c := x.dims()
	for _, i := range idx {
		if i < 0 || i >= r {
			return nil, errf("get.rows", shapesOf(x), "row %d out of range [0,%d)", i, r)
		}
	}
	if !x.isBig() || x.trans {
		d, err := x.AsDense()
		if err != nil {
			return nil, err
		}
		out := dense.New(len(idx), int(c))
		for o, i := range idx {
			copy(out.Row(o), d.Row(int(i)))
		}
		return out, nil
	}
	if err := x.MaterializeCtx(context.Background()); err != nil {
		return nil, err
	}
	st := x.big.Store()
	pr := st.PartRows()
	// Group requested rows by partition so each partition is read once.
	byPart := map[int][]int{}
	for o, i := range idx {
		byPart[int(i)/pr] = append(byPart[int(i)/pr], o)
	}
	out := dense.New(len(idx), int(c))
	buf := make([]float64, pr*int(c))
	for p, outs := range byPart {
		rows := int(min64(int64(pr), r-int64(p)*int64(pr)))
		if err := st.ReadPart(p, buf[:rows*int(c)]); err != nil {
			return nil, err
		}
		for _, o := range outs {
			local := int(idx[o]) - p*pr
			copy(out.Row(o), buf[local*int(c):(local+1)*int(c)])
		}
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Explain renders the lazy computation DAG rooted at x as an indented tree
// (virtual matrices, their GenOps and shapes) — the structure Figure 6(a)
// of the paper draws.
func Explain(x *FM) string {
	switch {
	case x.big != nil:
		return core.Explain(x.big)
	case x.sink != nil:
		return core.ExplainSink(x.sink)
	default:
		d := x.mustSmall()
		return fmt.Sprintf("dense %dx%d (materialized in memory)\n", d.R, d.C)
	}
}

// Unique returns the sorted distinct values (R's unique; output size is
// data-dependent, so this forces materialization, §3.4 case iv).
func Unique(x *FM) ([]float64, error) {
	keys, _, err := TableOf(x)
	return keys, err
}

// TableOf returns sorted distinct values and their counts (R's table).
func TableOf(x *FM) (keys []float64, counts []int64, err error) {
	if x.isBig() {
		t := core.Table(x.big)
		if err := x.s.materializeNow(context.Background(), "", nil, []*core.Sink{t}); err != nil {
			return nil, nil, err
		}
		k, c := t.TableResult()
		return k, c, nil
	}
	d, err := x.resolveSmall()
	if err != nil {
		return nil, nil, err
	}
	m := map[float64]int64{}
	for _, v := range d.Data {
		m[v]++
	}
	for k := range m {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	counts = make([]int64, len(keys))
	for i, k := range keys {
		counts[i] = m[k]
	}
	return keys, counts, nil
}

// Head materializes and returns the first n rows as a dense matrix.
func Head(x *FM, n int) (*dense.Dense, error) {
	d, err := x.AsDense()
	if err != nil {
		return nil, err
	}
	if n > d.R {
		n = d.R
	}
	out := dense.New(n, d.C)
	copy(out.Data, d.Data[:n*d.C])
	return out, nil
}
