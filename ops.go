package flashr

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dense"
)

// operand normalizes an argument that may be an *FM or a Go number.
type operand struct {
	fm     *FM
	scalar float64
	isNum  bool
}

func asOperand(v any) operand {
	switch t := v.(type) {
	case *FM:
		return operand{fm: t}
	case float64:
		return operand{scalar: t, isNum: true}
	case int:
		return operand{scalar: float64(t), isNum: true}
	case int64:
		return operand{scalar: float64(t), isNum: true}
	default:
		panic(fmt.Sprintf("flashr: operand type %T (want *FM, float64 or int)", v))
	}
}

// binOp implements every elementwise binary R function of Table 2: it
// dispatches on operand classes (big/small/scalar) and stays lazy whenever a
// big matrix is involved.
func binOp(x, y any, f *core.Binary) *FM {
	a, b := asOperand(x), asOperand(y)
	switch {
	case a.isNum && b.isNum:
		panic("flashr: binary op needs at least one matrix")
	case a.isNum:
		return scalarOp(b.fm, a.scalar, f, true)
	case b.isNum:
		return scalarOp(a.fm, b.scalar, f, false)
	}
	xa, yb := a.fm, b.fm
	if xa.s != yb.s {
		panic("flashr: operands belong to different sessions")
	}
	s := xa.s
	// 1×1 operands degrade to scalars.
	if r, c := yb.dims(); r == 1 && c == 1 && !yb.isBig() {
		return scalarOp(xa, yb.mustSmall().Data[0], f, false)
	}
	if r, c := xa.dims(); r == 1 && c == 1 && !xa.isBig() {
		return scalarOp(yb, xa.mustSmall().Data[0], f, true)
	}
	ar, ac := xa.dims()
	br, bc := yb.dims()
	if ar != br || ac != bc {
		panic(fmt.Sprintf("flashr: elementwise op on %dx%d and %dx%d", ar, ac, br, bc))
	}
	switch {
	case !xa.isBig() && !yb.isBig():
		da, db := xa.mustSmall(), yb.mustSmall()
		out := dense.New(da.R, da.C)
		for i := range out.Data {
			out.Data[i] = f.F(da.Data[i], db.Data[i])
		}
		return s.smallFM(out)
	case xa.isBig() && yb.isBig():
		if xa.trans != yb.trans {
			panic("flashr: elementwise op mixing a transposed and a non-transposed large matrix")
		}
		out := s.bigFM(core.Mapply(xa.big, yb.big, f))
		out.trans = xa.trans
		return out
	default:
		// One big, one small with the same logical shape: promote the
		// small one into the engine.
		big, small := xa, yb
		swapped := false
		if !big.isBig() {
			big, small = yb, xa
			swapped = true
		}
		if big.trans {
			panic("flashr: elementwise op between transposed large matrix and small matrix")
		}
		pm, err := small.promote()
		if err != nil {
			panic(err)
		}
		if swapped {
			return s.bigFM(core.Mapply(pm, big.big, f))
		}
		return s.bigFM(core.Mapply(big.big, pm, f))
	}
}

func scalarOp(x *FM, sc float64, f *core.Binary, scalarLeft bool) *FM {
	if x.isBig() {
		out := x.s.bigFM(core.MapplyScalar(x.big, sc, f, scalarLeft))
		out.trans = x.trans
		return out
	}
	d := x.mustSmall()
	out := dense.New(d.R, d.C)
	for i, v := range d.Data {
		if scalarLeft {
			out.Data[i] = f.F(sc, v)
		} else {
			out.Data[i] = f.F(v, sc)
		}
	}
	return x.s.smallFM(out)
}

// Add is R's "+" (elementwise; either argument may be a scalar).
func Add(x, y any) *FM { return binOp(x, y, core.BinAdd) }

// Sub is R's "-".
func Sub(x, y any) *FM { return binOp(x, y, core.BinSub) }

// Mul is R's "*" (Hadamard product).
func Mul(x, y any) *FM { return binOp(x, y, core.BinMul) }

// Div is R's "/".
func Div(x, y any) *FM { return binOp(x, y, core.BinDiv) }

// Pow is R's "^".
func Pow(x, y any) *FM { return binOp(x, y, core.BinPow) }

// Mod is R's "%%".
func Mod(x, y any) *FM { return binOp(x, y, core.BinMod) }

// Pmin is R's pmin.
func Pmin(x, y any) *FM { return binOp(x, y, core.BinPmin) }

// Pmax is R's pmax.
func Pmax(x, y any) *FM { return binOp(x, y, core.BinPmax) }

// Eq is R's "==" (1/0 valued result).
func Eq(x, y any) *FM { return binOp(x, y, core.BinEq) }

// Ne is R's "!=".
func Ne(x, y any) *FM { return binOp(x, y, core.BinNe) }

// Lt is R's "<".
func Lt(x, y any) *FM { return binOp(x, y, core.BinLt) }

// Le is R's "<=".
func Le(x, y any) *FM { return binOp(x, y, core.BinLe) }

// Gt is R's ">".
func Gt(x, y any) *FM { return binOp(x, y, core.BinGt) }

// Ge is R's ">=".
func Ge(x, y any) *FM { return binOp(x, y, core.BinGe) }

// And is R's "&".
func And(x, y any) *FM { return binOp(x, y, core.BinAnd) }

// Or is R's "|".
func Or(x, y any) *FM { return binOp(x, y, core.BinOr) }

// Mapply is the binary GenOp with a named predefined function (Table 1).
func Mapply(x, y any, fname string) *FM {
	f, err := core.LookupBinary(fname)
	if err != nil {
		panic(err)
	}
	return binOp(x, y, f)
}

func unOp(x *FM, f *core.Unary) *FM {
	if x.isBig() {
		out := x.s.bigFM(core.Sapply(x.big, f))
		out.trans = x.trans
		return out
	}
	return x.s.smallFM(x.mustSmall().Apply(f.F))
}

// Sapply is the unary GenOp with a named predefined function.
func Sapply(x *FM, fname string) *FM {
	f, err := core.LookupUnary(fname)
	if err != nil {
		panic(err)
	}
	return unOp(x, f)
}

// Neg is unary "-".
func Neg(x *FM) *FM { return unOp(x, core.UnaryNeg) }

// Not is R's "!".
func Not(x *FM) *FM { return unOp(x, core.UnaryNot) }

// Sqrt is R's sqrt.
func Sqrt(x *FM) *FM { return unOp(x, core.UnarySqrt) }

// Exp is R's exp.
func Exp(x *FM) *FM { return unOp(x, core.UnaryExp) }

// Log is R's log.
func Log(x *FM) *FM { return unOp(x, core.UnaryLog) }

// Log1p is R's log1p.
func Log1p(x *FM) *FM { return unOp(x, core.UnaryLog1p) }

// Abs is R's abs.
func Abs(x *FM) *FM { return unOp(x, core.UnaryAbs) }

// Floor is R's floor.
func Floor(x *FM) *FM { return unOp(x, core.UnaryFloor) }

// Ceiling is R's ceiling.
func Ceiling(x *FM) *FM { return unOp(x, core.UnaryCeil) }

// Round is R's round.
func Round(x *FM) *FM { return unOp(x, core.UnaryRound) }

// Sign is R's sign.
func Sign(x *FM) *FM { return unOp(x, core.UnarySign) }

// Sigmoid computes 1/(1+exp(-x)) in one fused kernel.
func Sigmoid(x *FM) *FM { return unOp(x, core.UnarySigmoid) }

// Square computes x*x.
func Square(x *FM) *FM { return unOp(x, core.UnarySquare) }

// aggF builds the full-matrix aggregation, lazily for big matrices.
func aggF(x *FM, f *core.AggFunc) *FM {
	if x.isBig() {
		return x.s.sinkFM(core.Agg(x.big, f))
	}
	d := x.mustSmall()
	acc := f.Init
	acc = f.StepV(acc, d.Data)
	return x.s.smallFM(dense.FromSlice(1, 1, []float64{acc}))
}

// Agg is agg(A, f) from Table 1: a scalar fold with a named function.
func Agg(x *FM, fname string) *FM {
	f, err := core.LookupAgg(fname)
	if err != nil {
		panic(err)
	}
	return aggF(x, f)
}

// Sum is R's sum; the result is a lazy 1×1 matrix (force with Float or
// AsVector, as the paper's examples do).
func Sum(x *FM) *FM { return aggF(x, core.AggSum) }

// Prod is R's prod.
func Prod(x *FM) *FM { return aggF(x, core.AggProd) }

// Min is R's min over all elements.
func Min(x *FM) *FM { return aggF(x, core.AggMin) }

// Max is R's max over all elements.
func Max(x *FM) *FM { return aggF(x, core.AggMax) }

// Any is R's any (on a 0/1 matrix).
func Any(x *FM) *FM { return aggF(x, core.AggAny) }

// All is R's all.
func All(x *FM) *FM { return aggF(x, core.AggAll) }

// Mean is R's mean over all elements.
func Mean(x *FM) *FM { return Div(Sum(x), float64(x.Length())) }

// RowSums aggregates every row; on a tall matrix this keeps the partition
// dimension (an n×1 tall matrix).
func RowSums(x *FM) *FM { return aggRowF(x, core.AggSum) }

// RowMeans is R's rowMeans.
func RowMeans(x *FM) *FM {
	_, c := x.dims()
	return Div(RowSums(x), float64(c))
}

// ColSums aggregates every column; on a tall matrix the result is a sink
// (1×p, held in memory).
func ColSums(x *FM) *FM { return aggColF(x, core.AggSum) }

// ColMeans is R's colMeans.
func ColMeans(x *FM) *FM {
	r, _ := x.dims()
	return Div(ColSums(x), float64(r))
}

// AggRow is agg.row(A, f) with a named function.
func AggRow(x *FM, fname string) *FM {
	f, err := core.LookupAgg(fname)
	if err != nil {
		panic(err)
	}
	return aggRowF(x, f)
}

// AggCol is agg.col(A, f) with a named function.
func AggCol(x *FM, fname string) *FM {
	f, err := core.LookupAgg(fname)
	if err != nil {
		panic(err)
	}
	return aggColF(x, f)
}

func aggRowF(x *FM, f *core.AggFunc) *FM {
	if x.isBig() {
		if x.trans {
			// Rows of the transpose are columns of the original.
			return x.s.sinkFM(core.AggCol(x.big, f)).T()
		}
		return x.s.bigFM(core.AggRow(x.big, f))
	}
	d := x.mustSmall()
	out := dense.New(d.R, 1)
	for i := 0; i < d.R; i++ {
		out.Data[i] = f.StepV(f.Init, d.Row(i))
	}
	return x.s.smallFM(out)
}

func aggColF(x *FM, f *core.AggFunc) *FM {
	if x.isBig() {
		if x.trans {
			return x.s.bigFM(core.AggRow(x.big, f)).T()
		}
		return x.s.sinkFM(core.AggCol(x.big, f))
	}
	d := x.mustSmall()
	out := dense.New(1, d.C)
	for j := 0; j < d.C; j++ {
		acc := f.Init
		for i := 0; i < d.R; i++ {
			acc = f.Step(acc, d.At(i, j))
		}
		out.Data[j] = acc
	}
	return x.s.smallFM(out)
}

// RowWhichMin returns the 0-based index of each row's minimum (R's
// which.min per row, shifted to 0-based so the result feeds GroupByRow
// directly).
func RowWhichMin(x *FM) *FM {
	if !x.isBig() || x.trans {
		panic("flashr: RowWhichMin needs a non-transposed large matrix")
	}
	return x.s.bigFM(core.WhichMinRow(x.big))
}

// RowWhichMax returns the 0-based index of each row's maximum.
func RowWhichMax(x *FM) *FM {
	if !x.isBig() || x.trans {
		panic("flashr: RowWhichMax needs a non-transposed large matrix")
	}
	return x.s.bigFM(core.WhichMaxRow(x.big))
}

// GroupByRow is groupby.row(A, B, f): rows of x grouped by the n×1 label
// matrix (0-based labels in [0,k)) and aggregated per column into a k×p sink.
func GroupByRow(x, labels *FM, k int, fname string) *FM {
	f, err := core.LookupAgg(fname)
	if err != nil {
		panic(err)
	}
	if !x.isBig() || x.trans {
		panic("flashr: GroupByRow needs a non-transposed large matrix")
	}
	lb, err := labels.promote()
	if err != nil {
		panic(err)
	}
	return x.s.sinkFM(core.GroupByRow(x.big, lb, k, f))
}

// GroupByCol is groupby.col(A, B, f): columns grouped by labels[j] ∈ [0,k),
// aggregated within each row; the n×k result keeps the partition dimension.
func GroupByCol(x *FM, labels []int, k int, fname string) *FM {
	f, err := core.LookupAgg(fname)
	if err != nil {
		panic(err)
	}
	if !x.isBig() || x.trans {
		panic("flashr: GroupByCol needs a non-transposed large matrix")
	}
	return x.s.bigFM(core.GroupByCol(x.big, labels, k, f))
}

// InnerProd is the generalized matrix multiplication GenOp: x (tall n×p)
// against a small matrix y (p×m), with named f1/f2 (e.g. "euclidean", "+"
// computes squared distances as in the paper's k-means).
func InnerProd(x, y *FM, f1name, f2name string) *FM {
	f1, err := core.LookupBinary(f1name)
	if err != nil {
		panic(err)
	}
	f2, err := core.LookupBinary(f2name)
	if err != nil {
		panic(err)
	}
	if !x.isBig() || x.trans {
		panic("flashr: InnerProd needs a non-transposed large left operand")
	}
	d, err := y.resolveSmall()
	if err != nil {
		panic(err)
	}
	return x.s.bigFM(core.InnerProd(x.big, d, f1, f2))
}

// MatMul is R's %*%. Supported operand shapes mirror how the paper's
// algorithms use multiplication on tall data:
//
//   - big %*% small           → streaming inner product (n×m tall result)
//   - t(big) %*% big          → crossprod sink (p×m small result)
//   - t(big) %*% small        → not meaningful on shapes; rejected
//   - small %*% small         → eager BLAS
//   - small %*% t(big)        → transposed inner product (view)
//
// Float matrices use the BLAS kernel; integer matrices use the generalized
// inner-product GenOp, per Table 2.
func MatMul(x, y *FM) *FM {
	s := x.s
	switch {
	case x.isBig() && !x.trans:
		// Right operand must be small (p×m).
		d, err := y.resolveSmall()
		if err != nil {
			panic(fmt.Sprintf("flashr: %%*%% of two tall matrices is t(A)%%*%%B-shaped only: %v", err))
		}
		if int64(d.R) != x.NCol() {
			panic(fmt.Sprintf("flashr: %%*%% dims %dx%d by %dx%d", x.NRow(), x.NCol(), d.R, d.C))
		}
		return s.bigFM(core.InnerProd(x.big, d, mmF1(x), mmF2(x)))
	case x.isBig() && x.trans:
		// t(A) %*% B with B tall: crossprod sink.
		if y.isBig() && !y.trans {
			if x.big.NRow() != y.big.NRow() {
				panic("flashr: crossprod row mismatch")
			}
			return s.sinkFM(core.CrossProd(x.big, y.big, mmF1(x), mmF2(x)))
		}
		if !y.isBig() {
			d := y.mustSmall()
			if int64(d.R) != x.big.NRow() {
				panic(fmt.Sprintf("flashr: %%*%% dims %dx%d by %dx%d", x.NRow(), x.NCol(), d.R, d.C))
			}
			// t(A) %*% small: promote the small right operand.
			pm, err := y.promote()
			if err != nil {
				panic(err)
			}
			return s.sinkFM(core.CrossProd(x.big, pm, mmF1(x), mmF2(x)))
		}
		panic("flashr: t(A) %*% t(B) on two tall matrices not supported")
	default:
		// Small left operand.
		da := x.mustSmall()
		if !y.isBig() {
			db := y.mustSmall()
			if da.C != db.R {
				panic(fmt.Sprintf("flashr: %%*%% dims %dx%d by %dx%d", da.R, da.C, db.R, db.C))
			}
			return s.smallFM(dense.MatMul(da, db))
		}
		if y.trans {
			// small(m×p) %*% t(big n×p) = t( big %*% t(small) ): stream.
			ip := core.InnerProd(y.big, da.T(), mmF1(y), mmF2(y))
			out := s.bigFM(ip)
			return out.T()
		}
		panic("flashr: small %*% tall is shape-invalid")
	}
}

// mmF1/mmF2 select the multiply kernel per Table 2: BLAS (nil) for floats,
// the generalized GenOp for integer matrices.
func mmF1(x *FM) *core.Binary {
	if x.big != nil && x.big.DType() != 0 { // non-F64
		return core.BinMul
	}
	return nil
}

func mmF2(x *FM) *core.Binary {
	if x.big != nil && x.big.DType() != 0 {
		return core.BinAdd
	}
	return nil
}

// CrossProd computes t(x) %*% x (R's crossprod), a p×p sink on tall input.
func CrossProd(x *FM) *FM { return CrossProd2(x, x) }

// CrossProd2 computes t(x) %*% y.
func CrossProd2(x, y *FM) *FM {
	if x.isBig() && y.isBig() && !x.trans && !y.trans {
		return x.s.sinkFM(core.CrossProd(x.big, y.big, mmF1(x), mmF2(x)))
	}
	return MatMul(x.T(), y)
}

// Sweep is R's sweep(x, margin, v, f): margin 2 sweeps a length-p vector
// along every row; margin 1 sweeps a length-n vector (an n×1 matrix,
// possibly tall) down every column.
func Sweep(x *FM, margin int, v *FM, fname string) *FM {
	f, err := core.LookupBinary(fname)
	if err != nil {
		panic(err)
	}
	if !x.isBig() {
		d := x.mustSmall()
		vd := v.mustSmall()
		switch margin {
		case 2:
			return x.s.smallFM(d.SweepRows(vd.Data, f.F))
		case 1:
			return x.s.smallFM(d.SweepCols(vd.Data, f.F))
		}
		panic("flashr: sweep margin must be 1 or 2")
	}
	if x.trans {
		panic("flashr: sweep on transposed large matrix")
	}
	switch margin {
	case 2:
		vd, err := v.resolveSmall()
		if err != nil {
			panic(err)
		}
		return x.s.bigFM(core.MapplyRowVec(x.big, vd.Data, f, false))
	case 1:
		vb, err := v.promote()
		if err != nil {
			panic(err)
		}
		return x.s.bigFM(core.MapplyColVec(x.big, vb, f, false))
	}
	panic("flashr: sweep margin must be 1 or 2")
}

// CumCol is the cumulative GenOp down each column (R's cumsum semantics per
// column on a matrix) with a named function.
func CumCol(x *FM, fname string) *FM {
	f, err := core.LookupAgg(fname)
	if err != nil {
		panic(err)
	}
	if x.isBig() {
		if x.trans {
			return x.s.bigFM(core.CumRow(x.big, f)).T()
		}
		return x.s.bigFM(core.CumCol(x.big, f))
	}
	d := x.mustSmall()
	out := dense.New(d.R, d.C)
	run := make([]float64, d.C)
	for j := range run {
		run[j] = f.Init
	}
	for i := 0; i < d.R; i++ {
		for j := 0; j < d.C; j++ {
			run[j] = f.Step(run[j], d.At(i, j))
			out.Set(i, j, run[j])
		}
	}
	return x.s.smallFM(out)
}

// CumRow is the cumulative GenOp along each row.
func CumRow(x *FM, fname string) *FM {
	f, err := core.LookupAgg(fname)
	if err != nil {
		panic(err)
	}
	if x.isBig() {
		if x.trans {
			return x.s.bigFM(core.CumCol(x.big, f)).T()
		}
		return x.s.bigFM(core.CumRow(x.big, f))
	}
	return CumCol(x.T(), fname).T()
}

// Cumsum on a one-column matrix (R's cumsum on a vector).
func Cumsum(x *FM) *FM { return CumCol(x, "+") }

// GetCols selects columns (R's x[, idx]); on tall matrices this is a
// virtual view whose blocked storage reads only the touched column blocks.
func GetCols(x *FM, cols []int) *FM {
	if x.isBig() {
		if x.trans {
			panic("flashr: GetCols on transposed large matrix (select rows instead)")
		}
		return x.s.bigFM(core.Cols(x.big, cols))
	}
	d := x.mustSmall()
	out := dense.New(d.R, len(cols))
	for i := 0; i < d.R; i++ {
		for j, c := range cols {
			out.Set(i, j, d.At(i, c))
		}
	}
	return x.s.smallFM(out)
}

// GetCol selects a single column as an n×1 matrix.
func GetCol(x *FM, j int) *FM { return GetCols(x, []int{j}) }

// Cbind concatenates matrices column-wise (R's cbind).
func Cbind(xs ...*FM) *FM {
	if len(xs) == 0 {
		panic("flashr: cbind of nothing")
	}
	out := xs[0]
	for _, x := range xs[1:] {
		out = cbind2(out, x)
	}
	return out
}

func cbind2(x, y *FM) *FM {
	if x.isBig() || y.isBig() {
		xb, err := x.promote()
		if err != nil {
			panic(err)
		}
		yb, err := y.promote()
		if err != nil {
			panic(err)
		}
		return x.s.bigFM(core.Cbind2(xb, yb))
	}
	dx, dy := x.mustSmall(), y.mustSmall()
	if dx.R != dy.R {
		panic("flashr: cbind row mismatch")
	}
	out := dense.New(dx.R, dx.C+dy.C)
	for i := 0; i < dx.R; i++ {
		copy(out.Row(i)[:dx.C], dx.Row(i))
		copy(out.Row(i)[dx.C:], dy.Row(i))
	}
	return x.s.smallFM(out)
}

// Rbind concatenates matrices row-wise (R's rbind). Tall operands are
// materialized and copied into a fresh store (the paper treats large matrix
// modification as out of scope, citing TileDB-style fragments as future
// work; a copy preserves semantics).
func Rbind(xs ...*FM) *FM {
	if len(xs) == 0 {
		panic("flashr: rbind of nothing")
	}
	s := xs[0].s
	anyBig := false
	var totalRows int64
	cols := xs[0].NCol()
	for _, x := range xs {
		if x.NCol() != cols {
			panic("flashr: rbind column mismatch")
		}
		totalRows += x.NRow()
		anyBig = anyBig || x.isBig()
	}
	if !anyBig {
		rows := make([][]float64, 0, totalRows)
		for _, x := range xs {
			d := x.mustSmall()
			for i := 0; i < d.R; i++ {
				rows = append(rows, d.Row(i))
			}
		}
		return s.smallFM(dense.FromRows(rows))
	}
	parts := make([]*dense.Dense, len(xs))
	for i, x := range xs {
		d, err := x.AsDense()
		if err != nil {
			panic(err)
		}
		parts[i] = d
	}
	big := dense.New(int(totalRows), int(cols))
	off := 0
	for _, d := range parts {
		copy(big.Data[off:], d.Data)
		off += len(d.Data)
	}
	out, err := s.FromDense(big)
	if err != nil {
		panic(err)
	}
	return out
}

// SetCols is the functional form of R's `x[, cols] <- v`: it returns x with
// the given columns replaced by the columns of v. On tall matrices the
// result is a virtual matrix constructed on the fly (§3.1 of the paper); no
// copy of x is materialized.
func SetCols(x *FM, cols []int, v *FM) *FM {
	if x.isBig() {
		if x.trans {
			panic("flashr: SetCols on transposed large matrix")
		}
		vb, err := v.promote()
		if err != nil {
			panic(err)
		}
		return x.s.bigFM(core.SetCols(x.big, vb, cols))
	}
	d := x.mustSmall().Clone()
	vd := v.mustSmall()
	for i := 0; i < d.R; i++ {
		for j, c := range cols {
			d.Set(i, c, vd.At(i, j))
		}
	}
	return x.s.smallFM(d)
}

// GroupBy is the generalized element groupby of Table 1: elements of x are
// grouped by value and folded with the named aggregation per group. Output
// size depends on the data, so it materializes immediately (like table).
func GroupBy(x *FM, fname string) (keys, folds []float64, err error) {
	f, err := core.LookupAgg(fname)
	if err != nil {
		return nil, nil, err
	}
	if x.isBig() {
		g := core.GroupByVal(x.big, f)
		if err := x.s.eng.Materialize(nil, []*core.Sink{g}); err != nil {
			return nil, nil, err
		}
		k, v := g.GroupByValResult()
		return k, v, nil
	}
	d, err := x.resolveSmall()
	if err != nil {
		return nil, nil, err
	}
	m := map[float64]float64{}
	for _, v := range d.Data {
		acc, ok := m[v]
		if !ok {
			acc = f.Init
		}
		m[v] = f.Step(acc, v)
	}
	for k := range m {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	folds = make([]float64, len(keys))
	for i, k := range keys {
		folds[i] = m[k]
	}
	return keys, folds, nil
}

// GetRows gathers arbitrary rows of x into a small in-memory matrix,
// touching only the I/O partitions that contain requested rows. (General
// large-matrix row shuffling is out of the paper's scope; this covers the
// R idiom x[idx, ] for moderate index sets.)
func GetRows(x *FM, idx []int64) (*dense.Dense, error) {
	r, c := x.dims()
	for _, i := range idx {
		if i < 0 || i >= r {
			return nil, fmt.Errorf("flashr: row %d out of range [0,%d)", i, r)
		}
	}
	if !x.isBig() || x.trans {
		d, err := x.AsDense()
		if err != nil {
			return nil, err
		}
		out := dense.New(len(idx), int(c))
		for o, i := range idx {
			copy(out.Row(o), d.Row(int(i)))
		}
		return out, nil
	}
	if err := x.Materialize(); err != nil {
		return nil, err
	}
	st := x.big.Store()
	pr := st.PartRows()
	// Group requested rows by partition so each partition is read once.
	byPart := map[int][]int{}
	for o, i := range idx {
		byPart[int(i)/pr] = append(byPart[int(i)/pr], o)
	}
	out := dense.New(len(idx), int(c))
	buf := make([]float64, pr*int(c))
	for p, outs := range byPart {
		rows := int(min64(int64(pr), r-int64(p)*int64(pr)))
		if err := st.ReadPart(p, buf[:rows*int(c)]); err != nil {
			return nil, err
		}
		for _, o := range outs {
			local := int(idx[o]) - p*pr
			copy(out.Row(o), buf[local*int(c):(local+1)*int(c)])
		}
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Explain renders the lazy computation DAG rooted at x as an indented tree
// (virtual matrices, their GenOps and shapes) — the structure Figure 6(a)
// of the paper draws.
func Explain(x *FM) string {
	switch {
	case x.big != nil:
		return core.Explain(x.big)
	case x.sink != nil:
		return core.ExplainSink(x.sink)
	default:
		d := x.mustSmall()
		return fmt.Sprintf("dense %dx%d (materialized in memory)\n", d.R, d.C)
	}
}

// Unique returns the sorted distinct values (R's unique; output size is
// data-dependent, so this forces materialization, §3.4 case iv).
func Unique(x *FM) ([]float64, error) {
	keys, _, err := TableOf(x)
	return keys, err
}

// TableOf returns sorted distinct values and their counts (R's table).
func TableOf(x *FM) (keys []float64, counts []int64, err error) {
	if x.isBig() {
		t := core.Table(x.big)
		if err := x.s.eng.Materialize(nil, []*core.Sink{t}); err != nil {
			return nil, nil, err
		}
		k, c := t.TableResult()
		return k, c, nil
	}
	d, err := x.resolveSmall()
	if err != nil {
		return nil, nil, err
	}
	m := map[float64]int64{}
	for _, v := range d.Data {
		m[v]++
	}
	for k := range m {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	counts = make([]int64, len(keys))
	for i, k := range keys {
		counts[i] = m[k]
	}
	return keys, counts, nil
}

// Head materializes and returns the first n rows as a dense matrix.
func Head(x *FM, n int) (*dense.Dense, error) {
	d, err := x.AsDense()
	if err != nil {
		return nil, err
	}
	if n > d.R {
		n = d.R
	}
	out := dense.New(n, d.C)
	copy(out.Data, d.Data[:n*d.C])
	return out, nil
}
