// The MASS-package workload of the paper's Figure 8: draw a large sample
// from a multivariate normal (MASS::mvrnorm) and fit linear discriminant
// analysis (MASS::lda) — the functions the paper accelerates "with little
// modification" and benchmarks against Revolution R Open.
//
//	go run ./examples/mass
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	flashr "repro"
	"repro/internal/dense"
	"repro/ml"
)

func main() {
	s := flashr.NewMemSession()
	const (
		nPerClass = 250_000
		p         = 16
	)

	// Two Gaussian classes sharing a covariance with strong off-diagonal
	// structure — exactly LDA's generative model.
	sigma := dense.Identity(p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i != j {
				sigma.Set(i, j, 0.5*math.Pow(0.7, math.Abs(float64(i-j))))
			}
		}
	}
	mu0 := make([]float64, p)
	mu1 := make([]float64, p)
	for j := range mu1 {
		mu1[j] = 1.5 / math.Sqrt(float64(j+1))
	}

	t0 := time.Now()
	x0, err := ml.Mvrnorm(s, nPerClass, mu0, sigma, 1)
	if err != nil {
		log.Fatal(err)
	}
	x1, err := ml.Mvrnorm(s, nPerClass, mu1, sigma, 2)
	if err != nil {
		log.Fatal(err)
	}
	// mvrnorm output is virtual; rbind materializes both draws.
	x := flashr.Rbind(x0, x1)
	fmt.Printf("mvrnorm: 2 × %d samples in %d dims: %v\n", nPerClass, p, time.Since(t0))

	// Labels: first half class 0, second half class 1.
	y, err := s.GenerateMat(2*nPerClass, 1, func(i int64, _ int) float64 {
		if i < nPerClass {
			return 0
		}
		return 1
	})
	if err != nil {
		log.Fatal(err)
	}

	t0 = time.Now()
	model, err := ml.LDA(s, x, y, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lda fit (counts+sums+Gramian in ONE fused pass): %v\n", time.Since(t0))
	fmt.Printf("class priors: %.3f / %.3f\n", model.Priors[0], model.Priors[1])

	acc, err := ml.Accuracy(model.Predict(s, x), y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training accuracy: %.4f\n", acc)

	// Verify the sample's covariance structure against Σ via the engine.
	corr, err := ml.Correlation(x0)
	if err != nil {
		log.Fatal(err)
	}
	want := sigma.At(0, 1) / math.Sqrt(sigma.At(0, 0)*sigma.At(1, 1))
	fmt.Printf("corr[0,1] of the draw: %.4f (population %.4f)\n", corr.At(0, 1), want)
}
