// Out-of-core execution: the same algorithms running against a simulated
// SSD array (FlashR-EM), with a bandwidth throttle standing in for real
// device limits. Demonstrates the paper's central claim at laptop scale —
// external-memory execution with a memory footprint that is a small
// fraction of the data, at speed comparable to in-memory execution for
// compute-heavy algorithms.
//
//	go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	flashr "repro"
	"repro/internal/workload"
	"repro/ml"
)

func main() {
	root, err := os.MkdirTemp("", "flashr-ssd-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// Four simulated SSDs, 1.2 GiB/s aggregate read — preserving the
	// paper's ~1:8 SSD:DRAM bandwidth ratio at this host's scale.
	drives := make([]string, 4)
	for i := range drives {
		drives[i] = filepath.Join(root, fmt.Sprintf("ssd-%02d", i))
	}
	em, err := flashr.NewSession(flashr.Options{
		EM: true, SSDDirs: drives, ReadMBps: 1200, WriteMBps: 1000,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer em.Close()

	const n = 1_000_000
	fmt.Printf("generating %d x %d click log directly onto the SSD array…\n", n, workload.CriteoCols)
	x, y, err := workload.Criteo(em, n, 11)
	if err != nil {
		log.Fatal(err)
	}
	dataMB := float64(n*workload.CriteoCols*8) / (1 << 20)
	fmt.Printf("dataset: %.0f MiB on SSDs\n", dataMB)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	t0 := time.Now()
	corr, err := ml.Correlation(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correlation (one fused pass over SSDs): %v\n", time.Since(t0))
	fmt.Printf("  corr[0,1]=%.4f corr[0,13]=%.4f\n", corr.At(0, 1), corr.At(0, 13))

	t0 = time.Now()
	nb, err := ml.NaiveBayes(em, x, y, 2)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := ml.Accuracy(nb.Predict(em, x), y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive bayes: %v, accuracy %.4f\n", time.Since(t0), acc)

	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	heapMB := float64(after.HeapAlloc) / (1 << 20)
	fmt.Printf("heap in use: %.0f MiB (%.1f%% of the dataset) — the engine keeps only\n",
		heapMB, 100*heapMB/dataMB)
	fmt.Println("sink results and per-worker partition buffers in memory")

	st := em.FS().Stats()
	fmt.Printf("SSD traffic: %.0f MiB read, %.0f MiB written\n",
		float64(st.BytesRead)/(1<<20), float64(st.BytesWritten)/(1<<20))
}
