// Logistic regression on a synthetic Criteo-like click log — the paper's
// Figure 2 workload. The gradient and loss expressions are written in R-base
// style against the flashr API; FlashR fuses each evaluation into a single
// pass over the data, whether in memory or on SSDs.
//
//	go run ./examples/logreg
package main

import (
	"fmt"
	"log"

	flashr "repro"
	"repro/internal/workload"
	"repro/ml"
)

func main() {
	s := flashr.NewMemSession()

	// Synthetic click log: 400k × 40 features, binary click labels with a
	// logistic ground truth (see internal/workload for the generator).
	fmt.Println("generating Criteo-like click log (400k x 40)…")
	x, y, err := workload.Criteo(s, 400_000, 7)
	if err != nil {
		log.Fatal(err)
	}
	rate, err := flashr.Mean(y).Float()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("click rate: %.3f\n", rate)

	// Train with L-BFGS (the paper's configuration). Each loss+gradient
	// evaluation is one fused DAG: X %*% w, the sigmoid, the residual,
	// the gradient crossprod and the logloss aggregate all evaluate in a
	// single pass.
	model, err := ml.LogisticRegressionLBFGS(s, x, y, ml.LogisticOptions{
		MaxIter: 30,
		Tol:     1e-6, // the paper's logloss-delta convergence threshold
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged after %d iterations, logloss %.5f\n", model.Iters, model.LogLoss)

	acc, err := ml.Accuracy(model.Predict(s, x), y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training accuracy: %.4f\n", acc)

	// The paper's Figure 2 GD-with-line-search variant, for comparison.
	gd, err := ml.LogisticRegressionGD(s, x, y, ml.LogisticOptions{MaxIter: 15})
	if err != nil {
		log.Fatal(err)
	}
	accGD, err := ml.Accuracy(gd.Predict(s, x), y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gradient-descent baseline: %d iterations, logloss %.5f, accuracy %.4f\n",
		gd.Iters, gd.LogLoss, accGD)
}
