// K-means on a synthetic spectral embedding — the paper's Figure 3 workload
// (PageGraph-32ev). The iteration is built from GenOps exactly as the paper
// writes it: a Euclidean generalized inner product for distances,
// agg.row("which.min") for assignment, groupby.row for the new centers, and
// set.cache on the assignment vector for the convergence test.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"

	flashr "repro"
	"repro/internal/workload"
	"repro/ml"
)

func main() {
	s := flashr.NewMemSession()

	fmt.Println("generating PageGraph-like spectral embedding (500k x 32)…")
	x, err := workload.PageGraph(s, 500_000, 3)
	if err != nil {
		log.Fatal(err)
	}

	const k = 10 // the paper's default cluster count
	res, err := ml.KMeans(s, x, k, ml.KMeansOptions{MaxIter: 50, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-means: %d iterations, converged=%v\n", res.Iters, res.Converged)
	fmt.Printf("within-cluster sum of squares: %.1f\n", res.Objective)
	fmt.Println("cluster sizes:")
	for g, size := range res.Sizes {
		fmt.Printf("  cluster %d: %8.0f points\n", g, size)
	}
	fmt.Println("moves per iteration:", res.Moves)

	// The cached assignment vector is an ordinary tall matrix; use it with
	// other GenOps, e.g. a histogram via table().
	keys, counts, err := flashr.TableOf(res.Assign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table(assignments): %d distinct clusters, largest %d\n", len(keys), maxOf(counts))
	res.Assign.Free()
}

func maxOf(v []int64) int64 {
	var m int64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
