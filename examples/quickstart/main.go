// Quickstart: create matrices, run lazily-fused R-base-style operations,
// and inspect when computation actually happens.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	flashr "repro"
)

func main() {
	// An in-memory session (FlashR-IM). See examples/outofcore for the
	// SSD-backed variant.
	s := flashr.NewMemSession()

	// rnorm.matrix: a 1M × 8 standard-normal matrix, generated in parallel.
	x, err := s.Rnorm(1_000_000, 8, 0, 1, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Everything below is LAZY: no data moves yet. The expression
	// standardizes columns and measures how many standardized values
	// exceed 2 — a DAG of sapply/mapply/aggregation GenOps.
	mean := flashr.ColMeans(x)
	meanV, err := mean.AsVector() // forces a first pass (column sums)
	if err != nil {
		log.Fatal(err)
	}
	centered := flashr.Sweep(x, 2, mean, "-")
	sd := flashr.Sqrt(flashr.ColMeans(flashr.Square(centered)))
	sdV, err := sd.AsVector()
	if err != nil {
		log.Fatal(err)
	}
	standardized := flashr.Sweep(centered, 2, sd, "/")
	outliers := flashr.Sum(flashr.Gt(flashr.Abs(standardized), 2.0))

	// Sum returns a lazy 1×1 sink; Float() triggers ONE fused pass that
	// evaluates the sweep, abs, compare and sum together.
	count, err := outliers.Float()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("matrix: %d x %d\n", x.NRow(), x.NCol())
	fmt.Printf("column means (first 4): %.4f %.4f %.4f %.4f\n", meanV[0], meanV[1], meanV[2], meanV[3])
	fmt.Printf("column sds   (first 4): %.4f %.4f %.4f %.4f\n", sdV[0], sdV[1], sdV[2], sdV[3])
	fmt.Printf("|z| > 2 count: %.0f (%.2f%% of elements)\n", count, 100*count/float64(x.Length()))

	// A Gramian (t(X) %*% X) is a sink GenOp: the p×p result lives in
	// memory while X streams through the engine once.
	gram, err := flashr.CrossProd(x).AsDense()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gramian[0,0..3]: %.1f %.1f %.1f %.1f\n",
		gram.At(0, 0), gram.At(0, 1), gram.At(0, 2), gram.At(0, 3))
	fmt.Printf("engine ran %d fused passes over the data\n", s.Engine().Stats().Passes.Load())
}
