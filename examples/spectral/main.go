// Spectral pipeline: the workload behind the paper's PageGraph-32ev dataset,
// end to end. A sparse web-like graph is stored on the simulated SSD array;
// semi-external-memory SpMM (sparse rows stream from SSD, dense vectors stay
// in memory — the FlashR integration with Zheng et al.'s SEM SpMM) powers a
// block power iteration that computes a spectral embedding, which then feeds
// k-means through the flashr engine.
//
//	go run ./examples/spectral
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"time"

	flashr "repro"
	"repro/internal/dense"
	"repro/internal/safs"
	"repro/internal/sparse"
	"repro/ml"
)

func main() {
	const (
		vertices = 200_000
		degree   = 8
		embedDim = 8
		powerIts = 6
		clusters = 6
	)
	root, err := os.MkdirTemp("", "flashr-spectral-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	fs, err := safs.OpenTempDir(root, 4, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	fmt.Printf("building a %d-vertex power-law graph (avg degree %d)…\n", vertices, degree)
	g := sparse.RandomGraph(vertices, degree, 1)
	se, err := sparse.WriteSE(fs, "graph", g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph on SSD array: %d edges, row pointers in memory (semi-external)\n", se.NNZ())

	// Block power iteration: V ← orth(A·V), repeated. The multiply streams
	// the adjacency matrix from the SSD array.
	v := dense.New(vertices, embedDim)
	rng := newRng(7)
	for i := range v.Data {
		v.Data[i] = rng()
	}
	t0 := time.Now()
	for it := 0; it < powerIts; it++ {
		av, err := se.MulDense(v, 4)
		if err != nil {
			log.Fatal(err)
		}
		orthonormalize(av)
		v = av
	}
	fmt.Printf("block power iteration ×%d (SEM SpMM): %v\n", powerIts, time.Since(t0))

	// Hand the embedding to the FlashR engine and cluster it.
	s := flashr.NewMemSession()
	x, err := s.FromDense(v)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ml.KMeans(s, x, clusters, ml.KMeansOptions{MaxIter: 40, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-means on the embedding: %d iterations, converged=%v\n", res.Iters, res.Converged)
	for gIdx, size := range res.Sizes {
		fmt.Printf("  community %d: %8.0f vertices\n", gIdx, size)
	}
	res.Assign.Free()
}

// orthonormalize runs modified Gram-Schmidt on the columns of v.
func orthonormalize(v *dense.Dense) {
	n, k := v.R, v.C
	for c := 0; c < k; c++ {
		// Subtract projections onto previous columns.
		for prev := 0; prev < c; prev++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += v.At(i, c) * v.At(i, prev)
			}
			for i := 0; i < n; i++ {
				v.Set(i, c, v.At(i, c)-dot*v.At(i, prev))
			}
		}
		var norm float64
		for i := 0; i < n; i++ {
			norm += v.At(i, c) * v.At(i, c)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			v.Set(i, c, v.At(i, c)/norm)
		}
	}
}

// newRng returns a tiny deterministic normal-ish generator (sum of
// uniforms) to keep the example free of global rand state.
func newRng(seed uint64) func() float64 {
	state := seed
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	return func() float64 {
		return next() + next() + next() - 1.5
	}
}
