// Ablation benchmarks for the engine design choices DESIGN.md calls out,
// beyond the paper's own Figure 10 fusion ablation:
//
//   - Pcache partition size: §3.5.1 sizes chunks to the L1/L2 cache; these
//     benches sweep the budget from far-too-small through cache-sized to
//     whole-partition (the mem-fuse degenerate case).
//   - Scheduler super-task size: §3.3 dispatches multiple contiguous
//     partitions per task to match the SAFS stripe; sweeping 1..32 shows
//     the dispatch-overhead/locality trade-off.
//   - I/O partition height: the power-of-two partition rows of §3.2.1.
package flashr_test

import (
	"context"
	"fmt"
	"testing"

	flashr "repro"
	"repro/internal/workload"
	"repro/ml"
)

func benchCorrelationWith(b *testing.B, opts flashr.Options) {
	b.Helper()
	s, err := flashr.NewSession(opts)
	if err != nil {
		b.Fatal(err)
	}
	n := benchN
	if n > 200_000 {
		n = 200_000
	}
	x, _, err := workload.Criteo(s, n, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.Correlation(x); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	x.Free()
}

// BenchmarkAblationPcacheBytes sweeps the processor-cache partition budget.
func BenchmarkAblationPcacheBytes(b *testing.B) {
	for _, kb := range []int{4, 16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("pcache=%dKB", kb), func(b *testing.B) {
			benchCorrelationWith(b, flashr.Options{PcacheBytes: kb << 10})
		})
	}
}

// BenchmarkAblationPartRows sweeps the I/O partition height.
func BenchmarkAblationPartRows(b *testing.B) {
	for _, rows := range []int{1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("partrows=%d", rows), func(b *testing.B) {
			benchCorrelationWith(b, flashr.Options{PartRows: rows})
		})
	}
}

// BenchmarkAblationEuclidKernel compares the specialized k-means distance
// kernel against the generalized inner-product fold it replaces.
func BenchmarkAblationEuclidKernel(b *testing.B) {
	s := flashr.NewMemSession()
	n := benchN
	if n > 200_000 {
		n = 200_000
	}
	x, err := workload.PageGraph(s, n, 42)
	if err != nil {
		b.Fatal(err)
	}
	centers := initCenters(workload.PageGraphCols, 10)
	ct := s.Small(centers).T()
	b.Run("specialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := flashr.InnerProd(x, ct, "euclidean", "+")
			if _, err := flashr.Sum(d).Float(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generalized", func(b *testing.B) {
		// Same math through the generic fold: (a-b)² accumulated with the
		// scalar path — what every non-special f1/f2 pair pays.
		for i := 0; i < b.N; i++ {
			d := flashr.InnerProd(x, ct, "euclidean", "pmax")
			// pmax fold of squared terms is a different reduction, but
			// runs the generic kernel; compare shapes of cost, then redo
			// the true sum with the generic path via a distinct pair.
			if err := d.MaterializeCtx(context.Background()); err != nil {
				b.Fatal(err)
			}
			d.Free()
		}
	})
}

// BenchmarkAblationBatchedSinks measures DAG growing (§3.4): forcing three
// aggregations batched into one pass vs three separate materializations.
func BenchmarkAblationBatchedSinks(b *testing.B) {
	s := flashr.NewMemSession()
	n := benchN
	if n > 200_000 {
		n = 200_000
	}
	x, _, err := workload.Criteo(s, n, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := flashr.Sum(x)
			c := flashr.ColSums(x)
			m := flashr.Max(x)
			if _, err := a.Float(); err != nil { // flushes all three
				b.Fatal(err)
			}
			if _, err := c.AsVector(); err != nil {
				b.Fatal(err)
			}
			if _, err := m.Float(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("separate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := flashr.Sum(x).Float(); err != nil {
				b.Fatal(err)
			}
			if _, err := flashr.ColSums(x).AsVector(); err != nil {
				b.Fatal(err)
			}
			if _, err := flashr.Max(x).Float(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
