package flashr

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
)

// matrixMeta is the sidecar metadata stored next to a named matrix on the
// SSD array, so matrices can be reopened across sessions without the caller
// tracking shapes (what SAFS keeps in its own metadata files).
type matrixMeta struct {
	NRow     int64  `json:"nrow"`
	NCol     int    `json:"ncol"`
	PartRows int    `json:"part_rows"`
	Blocks   int    `json:"blocks"` // 0 = flat file, else 32-column TAS blocks
	DType    string `json:"dtype"`
	Version  int    `json:"version"`
}

func metaName(name string) string { return name + ".meta" }

// SaveNamed materializes x and stores it under the given name on the
// session's SSD array (EM sessions only), with a metadata sidecar; reopen
// with OpenNamed — from this session or a later one over the same drives.
func (s *Session) SaveNamed(x *FM, name string) error {
	if s.fs == nil {
		return fmt.Errorf("flashr: SaveNamed needs a session with an SSD array")
	}
	if err := x.Materialize(); err != nil {
		return err
	}
	if !x.isBig() {
		d, err := x.resolveSmall()
		if err != nil {
			return err
		}
		big, err := s.FromDense(d)
		if err != nil {
			return err
		}
		return s.SaveNamed(big, name)
	}
	if x.trans {
		return fmt.Errorf("flashr: SaveNamed of a transposed view; save the base matrix")
	}
	src := x.big.Store()
	nrow, ncol := src.NRow(), src.NCol()
	partRows := src.PartRows()
	blocks := 0
	if ncol > matrix.BlockCols {
		blocks = matrix.NumBlockCols(ncol)
	}
	// Destination store(s) under the chosen name.
	var dst matrix.Store
	var err error
	if blocks > 0 {
		bs := make([]matrix.Store, blocks)
		for b := 0; b < blocks; b++ {
			bs[b], err = matrix.NewSAFSStore(s.fs, fmt.Sprintf("%s.b%02d", name, b),
				nrow, matrix.BlockWidth(ncol, b), partRows)
			if err != nil {
				return err
			}
		}
		dst, err = matrix.NewBlockedStore(bs)
		if err != nil {
			return err
		}
	} else {
		dst, err = matrix.NewSAFSStore(s.fs, name, nrow, ncol, partRows)
		if err != nil {
			return err
		}
	}
	buf := make([]float64, partRows*ncol)
	for p := 0; p < src.NumParts(); p++ {
		rows := matrix.PartRowsOf(nrow, partRows, p)
		if err := src.ReadPart(p, buf[:rows*ncol]); err != nil {
			return err
		}
		if err := dst.WritePart(p, buf[:rows*ncol]); err != nil {
			return err
		}
	}
	meta := matrixMeta{
		NRow: nrow, NCol: ncol, PartRows: partRows, Blocks: blocks,
		DType: x.big.DType().String(), Version: 1,
	}
	raw, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	mf, err := s.fs.Create(metaName(name), int64(len(raw)))
	if err != nil {
		return err
	}
	return mf.WriteAt(raw, 0)
}

// OpenNamed opens a matrix previously stored with SaveNamed (possibly by a
// different process over the same drive directories).
func (s *Session) OpenNamed(name string) (*FM, error) {
	if s.fs == nil {
		return nil, fmt.Errorf("flashr: OpenNamed needs a session with an SSD array")
	}
	mf, err := s.fs.OpenFile(metaName(name))
	if err != nil {
		return nil, fmt.Errorf("flashr: no metadata for %q: %w", name, err)
	}
	raw := make([]byte, mf.Size())
	if err := mf.ReadAt(raw, 0); err != nil {
		return nil, err
	}
	var meta matrixMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("flashr: corrupt metadata for %q: %w", name, err)
	}
	if meta.PartRows != s.eng.PartRows() {
		return nil, fmt.Errorf("flashr: %q stored with partition height %d, session uses %d",
			name, meta.PartRows, s.eng.PartRows())
	}
	var st matrix.Store
	if meta.Blocks > 0 {
		bs := make([]matrix.Store, meta.Blocks)
		for b := 0; b < meta.Blocks; b++ {
			bs[b], err = matrix.OpenSAFSStore(s.fs, fmt.Sprintf("%s.b%02d", name, b),
				meta.NRow, matrix.BlockWidth(meta.NCol, b), meta.PartRows)
			if err != nil {
				return nil, err
			}
		}
		st, err = matrix.NewBlockedStore(bs)
	} else {
		st, err = matrix.OpenSAFSStore(s.fs, name, meta.NRow, meta.NCol, meta.PartRows)
	}
	if err != nil {
		return nil, err
	}
	dt := matrix.F64
	switch meta.DType {
	case "integer":
		dt = matrix.I64
	case "logical":
		dt = matrix.Bool
	}
	return s.bigFM(core.NewLeaf(st, dt)), nil
}

// ListNamed returns the names of matrices stored with SaveNamed on the
// session's array.
func (s *Session) ListNamed() []string {
	if s.fs == nil {
		return nil
	}
	var out []string
	for _, f := range s.fs.List() {
		const suffix = ".meta"
		if len(f) > len(suffix) && f[len(f)-len(suffix):] == suffix {
			out = append(out, f[:len(f)-len(suffix)])
		}
	}
	return out
}
