package flashr

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/safs"
)

// matrixMeta is the sidecar metadata stored next to a named matrix on the
// SSD array, so matrices can be reopened across sessions without the caller
// tracking shapes (what SAFS keeps in its own metadata files).
//
// Version history:
//
//	v1: shape metadata only.
//	v2: adds Checksums — the per-stripe CRC32C table of every underlying
//	    SAFS file, keyed by file name (the matrix name for a flat store,
//	    "<name>.bNN" per block for a blocked one). Reopening a v2 matrix
//	    restores the tables so every read is verified; v1 files reopen
//	    checksum-free and are verified again from the first rewrite on.
type matrixMeta struct {
	NRow     int64  `json:"nrow"`
	NCol     int    `json:"ncol"`
	PartRows int    `json:"part_rows"`
	Blocks   int    `json:"blocks"` // 0 = flat file, else 32-column TAS blocks
	DType    string `json:"dtype"`
	Version  int    `json:"version"`
	// Checksums maps each underlying SAFS file to its per-stripe CRC32C
	// table (v2+; absent in v1 sidecars).
	Checksums map[string][]uint32 `json:"checksums,omitempty"`
}

// metaVersion is the sidecar version this build writes.
const metaVersion = 2

func metaName(name string) string { return name + ".meta" }

// decodeMatrixMeta parses and validates a sidecar. It accepts every version
// up to metaVersion (older sidecars simply lack the newer fields) and
// rejects sidecars from the future, malformed JSON, and impossible shapes —
// a corrupted sidecar must fail loudly here, not as an index panic later.
func decodeMatrixMeta(name string, raw []byte) (matrixMeta, error) {
	var meta matrixMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return meta, fmt.Errorf("flashr: corrupt metadata for %q: %w", name, err)
	}
	if meta.Version > metaVersion {
		return meta, fmt.Errorf("flashr: %q stored with sidecar version %d, this build reads up to %d",
			name, meta.Version, metaVersion)
	}
	if meta.NRow < 0 || meta.NCol <= 0 || meta.PartRows <= 0 || meta.Blocks < 0 {
		return meta, fmt.Errorf("flashr: corrupt metadata for %q: impossible shape %dx%d (part_rows=%d, blocks=%d)",
			name, meta.NRow, meta.NCol, meta.PartRows, meta.Blocks)
	}
	if meta.Blocks > 0 && meta.Blocks != matrix.NumBlockCols(meta.NCol) {
		return meta, fmt.Errorf("flashr: corrupt metadata for %q: %d blocks for %d columns",
			name, meta.Blocks, meta.NCol)
	}
	return meta, nil
}

// metaFileNames lists the underlying SAFS file names of a named matrix.
func (m matrixMeta) metaFileNames(name string) []string {
	if m.Blocks == 0 {
		return []string{name}
	}
	names := make([]string, m.Blocks)
	for b := range names {
		names[b] = fmt.Sprintf("%s.b%02d", name, b)
	}
	return names
}

// SaveNamed materializes x and stores it under the given name on the
// session's SSD array (EM sessions only), with a metadata sidecar; reopen
// with OpenNamed — from this session or a later one over the same drives.
//
// Deprecated: prefer SaveNamedCtx, which honors cancellation; SaveNamed is
// SaveNamedCtx with context.Background().
func (s *Session) SaveNamed(x *FM, name string) error {
	return s.SaveNamedCtx(context.Background(), x, name)
}

// SaveNamedCtx is SaveNamed under ctx: the materialization pass, and the
// partition-by-partition copy onto the array, both stop with ctx.Err() when
// ctx is cancelled (a partially written name is overwritten by the next
// save).
func (s *Session) SaveNamedCtx(ctx context.Context, x *FM, name string) error {
	if s.fs == nil {
		return fmt.Errorf("flashr: SaveNamed needs a session with an SSD array")
	}
	if err := x.MaterializeCtx(ctx); err != nil {
		return err
	}
	if !x.isBig() {
		d, err := x.resolveSmall()
		if err != nil {
			return err
		}
		big, err := s.FromDense(d)
		if err != nil {
			return err
		}
		return s.SaveNamedCtx(ctx, big, name)
	}
	if x.trans {
		return fmt.Errorf("flashr: SaveNamed of a transposed view; save the base matrix")
	}
	src := x.big.Store()
	nrow, ncol := src.NRow(), src.NCol()
	partRows := src.PartRows()
	blocks := 0
	if ncol > matrix.BlockCols {
		blocks = matrix.NumBlockCols(ncol)
	}
	// Destination store(s) under the chosen name.
	var dst matrix.Store
	var files []*matrix.SAFSStore
	var err error
	if blocks > 0 {
		bs := make([]matrix.Store, blocks)
		for b := 0; b < blocks; b++ {
			st, serr := matrix.NewSAFSStore(s.fs, fmt.Sprintf("%s.b%02d", name, b),
				nrow, matrix.BlockWidth(ncol, b), partRows)
			if serr != nil {
				return serr
			}
			bs[b] = st
			files = append(files, st)
		}
		dst, err = matrix.NewBlockedStore(bs)
		if err != nil {
			return err
		}
	} else {
		st, serr := matrix.NewSAFSStore(s.fs, name, nrow, ncol, partRows)
		if serr != nil {
			return serr
		}
		dst = st
		files = append(files, st)
	}
	buf := make([]float64, partRows*ncol)
	for p := 0; p < src.NumParts(); p++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		rows := matrix.PartRowsOf(nrow, partRows, p)
		if err := src.ReadPart(p, buf[:rows*ncol]); err != nil {
			return err
		}
		if err := dst.WritePart(p, buf[:rows*ncol]); err != nil {
			return err
		}
	}
	meta := matrixMeta{
		NRow: nrow, NCol: ncol, PartRows: partRows, Blocks: blocks,
		DType: x.big.DType().String(), Version: metaVersion,
		Checksums: make(map[string][]uint32, len(files)),
	}
	// Persist the per-stripe CRC32C tables so a later session verifies its
	// reads against the data written now (every stripe was just written, so
	// every table is complete).
	for _, st := range files {
		sums, complete := st.File().Checksums()
		if !complete {
			return fmt.Errorf("flashr: SaveNamed %q: incomplete checksum table for %q", name, st.File().Name())
		}
		meta.Checksums[st.File().Name()] = sums
	}
	raw, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	mf, err := s.fs.Create(metaName(name), int64(len(raw)))
	if err != nil {
		return err
	}
	return mf.WriteAt(raw, 0)
}

// OpenNamed opens a matrix previously stored with SaveNamed (possibly by a
// different process over the same drive directories).
func (s *Session) OpenNamed(name string) (*FM, error) {
	if s.fs == nil {
		return nil, fmt.Errorf("flashr: OpenNamed needs a session with an SSD array")
	}
	mf, err := s.fs.OpenFile(metaName(name))
	if err != nil {
		return nil, fmt.Errorf("flashr: no metadata for %q: %w", name, err)
	}
	raw := make([]byte, mf.Size())
	if err := mf.ReadAt(raw, 0); err != nil {
		return nil, err
	}
	meta, err := decodeMatrixMeta(name, raw)
	if err != nil {
		return nil, err
	}
	if meta.PartRows != s.eng.PartRows() {
		return nil, fmt.Errorf("flashr: %q stored with partition height %d, session uses %d",
			name, meta.PartRows, s.eng.PartRows())
	}
	// restore reinstates a file's persisted checksum table (v2 sidecars), so
	// every subsequent read of the reopened matrix is verified. v1 sidecars
	// carry no table: the file reopens checksum-free.
	restore := func(f *safs.File) error {
		sums, ok := meta.Checksums[f.Name()]
		if !ok {
			return nil
		}
		if err := f.RestoreChecksums(sums); err != nil {
			return fmt.Errorf("flashr: %q: %w", name, err)
		}
		return nil
	}
	var st matrix.Store
	if meta.Blocks > 0 {
		bs := make([]matrix.Store, meta.Blocks)
		for b := 0; b < meta.Blocks; b++ {
			bst, berr := matrix.OpenSAFSStore(s.fs, fmt.Sprintf("%s.b%02d", name, b),
				meta.NRow, matrix.BlockWidth(meta.NCol, b), meta.PartRows)
			if berr != nil {
				return nil, berr
			}
			if err := restore(bst.File()); err != nil {
				return nil, err
			}
			bs[b] = bst
		}
		st, err = matrix.NewBlockedStore(bs)
	} else {
		var fst *matrix.SAFSStore
		fst, err = matrix.OpenSAFSStore(s.fs, name, meta.NRow, meta.NCol, meta.PartRows)
		if err == nil {
			if rerr := restore(fst.File()); rerr != nil {
				return nil, rerr
			}
			st = fst
		}
	}
	if err != nil {
		return nil, err
	}
	dt := matrix.F64
	switch meta.DType {
	case "integer":
		dt = matrix.I64
	case "logical":
		dt = matrix.Bool
	}
	m := core.NewLeaf(st, dt)
	s.noteNamed(name, m)
	return s.bigFM(m), nil
}

// SetNamed overwrites the named matrix with x (creating it if absent) and
// invalidates every cached result built over matrices previously opened from
// that name — the persistence analogue of []<- mutation. Handles opened from
// the name before the overwrite must be reopened: their restored checksum
// tables describe the replaced bytes, so further reads through them fail
// verification loudly instead of returning stale or mixed data (and the
// invalidation above guarantees the result cache never masks that error with
// a pre-overwrite value).
func (s *Session) SetNamed(x *FM, name string) error {
	if s.fs == nil {
		return fmt.Errorf("flashr: SetNamed needs a session with an SSD array")
	}
	// Snapshot the leaves backed by the old files before they change.
	s.mu.Lock()
	old := append([]*core.Mat(nil), s.named[name]...)
	s.mu.Unlock()
	// Drop the old files (data + sidecar) so the rewrite starts clean even
	// when the new shape needs fewer block files than the old one.
	if mf, err := s.fs.OpenFile(metaName(name)); err == nil {
		raw := make([]byte, mf.Size())
		if rerr := mf.ReadAt(raw, 0); rerr == nil {
			if meta, derr := decodeMatrixMeta(name, raw); derr == nil {
				for _, fname := range meta.metaFileNames(name) {
					s.fs.Remove(fname)
				}
			}
		}
		s.fs.Remove(metaName(name))
	}
	if err := s.SaveNamedCtx(context.Background(), x, name); err != nil {
		return err
	}
	for _, m := range old {
		s.eng.NoteMutation(m)
	}
	return nil
}

// VerifyNamed scrubs a matrix stored with SaveNamed against the checksum
// tables in its sidecar, returning one report per underlying SAFS file (one
// for a flat matrix, one per 32-column block for a wide one). Stripes a v1
// sidecar has no checksums for are reported as skipped, not corrupt. The
// scan reads segment bytes directly — no token bucket, no retries — so it is
// off the simulated bandwidth budget.
//
// Deprecated: prefer VerifyNamedCtx, which honors cancellation; VerifyNamed
// is VerifyNamedCtx with context.Background().
func (s *Session) VerifyNamed(name string) ([]safs.VerifyReport, error) {
	return s.VerifyNamedCtx(context.Background(), name)
}

// VerifyNamedCtx is VerifyNamed under ctx: the scrub stops between files
// with ctx.Err() when ctx is cancelled, returning the reports completed so
// far.
func (s *Session) VerifyNamedCtx(ctx context.Context, name string) ([]safs.VerifyReport, error) {
	if s.fs == nil {
		return nil, fmt.Errorf("flashr: VerifyNamed needs a session with an SSD array")
	}
	mf, err := s.fs.OpenFile(metaName(name))
	if err != nil {
		return nil, fmt.Errorf("flashr: no metadata for %q: %w", name, err)
	}
	raw := make([]byte, mf.Size())
	if err := mf.ReadAt(raw, 0); err != nil {
		return nil, err
	}
	meta, err := decodeMatrixMeta(name, raw)
	if err != nil {
		return nil, err
	}
	var reports []safs.VerifyReport
	for _, fname := range meta.metaFileNames(name) {
		if err := ctx.Err(); err != nil {
			return reports, err
		}
		f, err := s.fs.OpenFile(fname)
		if err != nil {
			return reports, err
		}
		if sums, ok := meta.Checksums[fname]; ok {
			if err := f.RestoreChecksums(sums); err != nil {
				return reports, fmt.Errorf("flashr: %q: %w", name, err)
			}
		}
		rep, err := f.Verify()
		if err != nil {
			return reports, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// ListNamed returns the names of matrices stored with SaveNamed on the
// session's array.
func (s *Session) ListNamed() []string {
	if s.fs == nil {
		return nil
	}
	var out []string
	for _, f := range s.fs.List() {
		const suffix = ".meta"
		if len(f) > len(suffix) && f[len(f)-len(suffix):] == suffix {
			out = append(out, f[:len(f)-len(suffix)])
		}
	}
	return out
}
