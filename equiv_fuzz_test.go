package flashr

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

// Differential equivalence harness for the hash-consed engine: a seeded
// random program is executed under every combination of
// {FuseNone, FuseMem, FuseCache} × {CSE on, off} × {SyncWrites on, off}, and
// every configuration must produce bit-identical results. Each session runs
// the program twice over the same leaf, so the second run exercises the
// cross-materialize result cache on exactly the values the first run
// computed.
//
// Sink aggregations fold worker-local partials whose partition composition
// depends on scheduling, so float sums are only bit-stable when the summands
// are integers (integer addition in float64 is exact and grouping-
// insensitive below 2^53). The program therefore fingerprints sums through
// Round, and keeps raw floats for the order-insensitive min/max sinks and
// for tall outputs (elementwise, deterministic by construction). The value
// ranges below keep every rounded sum far under 2^53.

// equivConfig is one point of the equivalence grid.
type equivConfig struct {
	name       string
	fuse       FuseLevel
	disableCSE bool
	syncWrites bool
	em         bool
}

func equivGrid(em bool) []equivConfig {
	var grid []equivConfig
	for _, fuse := range []FuseLevel{FuseCache, FuseMem, FuseNone} {
		for _, cse := range []bool{false, true} {
			for _, sync := range []bool{false, true} {
				grid = append(grid, equivConfig{
					name:       fmt.Sprintf("fuse=%v/cse=%t/sync=%t", fuse, !cse, sync),
					fuse:       fuse,
					disableCSE: cse,
					syncWrites: sync,
				})
			}
		}
	}
	if em {
		grid = append(grid,
			equivConfig{name: "em/cache/cse-on", fuse: FuseCache, em: true},
			equivConfig{name: "em/cache/cse-off/sync", fuse: FuseCache, disableCSE: true, syncWrites: true, em: true},
		)
	}
	return grid
}

// buildEquivExpr builds a deterministic random elementwise expression over x.
// Ops are chosen to keep magnitudes bounded (no exp/log/div) so rounded sums
// stay exactly representable.
func buildEquivExpr(rng *rand.Rand, x *FM, depth int) *FM {
	if depth <= 0 {
		return x
	}
	switch rng.Intn(13) {
	case 0:
		return Abs(buildEquivExpr(rng, x, depth-1))
	case 1:
		return Neg(buildEquivExpr(rng, x, depth-1))
	case 2:
		return Sign(buildEquivExpr(rng, x, depth-1))
	case 3:
		return Sqrt(Abs(buildEquivExpr(rng, x, depth-1)))
	case 4:
		return Sigmoid(buildEquivExpr(rng, x, depth-1))
	case 5:
		return Round(buildEquivExpr(rng, x, depth-1))
	case 6:
		a := buildEquivExpr(rng, x, depth-1)
		b := buildEquivExpr(rng, x, depth-1)
		return Add(a, b)
	case 7:
		a := buildEquivExpr(rng, x, depth-1)
		b := buildEquivExpr(rng, x, depth-1)
		return Sub(a, b)
	case 8:
		a := buildEquivExpr(rng, x, depth-1)
		b := buildEquivExpr(rng, x, depth-1)
		return Mul(a, b)
	case 9:
		a := buildEquivExpr(rng, x, depth-1)
		b := buildEquivExpr(rng, x, depth-1)
		return Pmin(a, b)
	case 10:
		a := buildEquivExpr(rng, x, depth-1)
		b := buildEquivExpr(rng, x, depth-1)
		return Pmax(a, b)
	case 11:
		return Mul(buildEquivExpr(rng, x, depth-1), float64(rng.Intn(9))-4)
	default:
		return Cumsum(buildEquivExpr(rng, x, depth-1))
	}
}

// runEquivProgram executes the seeded program once over the shared leaf x and
// returns its result fingerprint as float64 bit patterns. Expressions are
// rebuilt from scratch each run — structurally identical, new node objects —
// which is exactly what iterative algorithms do per iteration.
func runEquivProgram(t testing.TB, x *FM, progSeed int64) []uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(progSeed))
	e1 := buildEquivExpr(rng, x, 3)
	e2 := buildEquivExpr(rng, x, 3)
	// An identical twin of e1 from a fresh RNG with the same seed: the
	// engine must CSE it, a CSE-free engine must recompute it — either way
	// the bits must agree.
	e1b := buildEquivExpr(rand.New(rand.NewSource(progSeed)), x, 3)

	z, zb := Sum(Round(e1)), Sum(Round(e1b))
	mx, mn := Max(e2), Min(e2)
	cs := ColSums(Round(e2))

	var fp []uint64
	add := func(vs ...float64) {
		for _, v := range vs {
			fp = append(fp, math.Float64bits(v))
		}
	}
	vz, err := z.Float() // one fused pass materializes every pending sink
	if err != nil {
		t.Fatal(err)
	}
	vzb, err := zb.Float()
	if err != nil {
		t.Fatal(err)
	}
	vmx, err := mx.Float()
	if err != nil {
		t.Fatal(err)
	}
	vmn, err := mn.Float()
	if err != nil {
		t.Fatal(err)
	}
	add(vz, vzb, vmx, vmn)
	csv, err := cs.AsVector()
	if err != nil {
		t.Fatal(err)
	}
	add(csv...)
	d1, err := e1.AsDense()
	if err != nil {
		t.Fatal(err)
	}
	add(d1.Data...)
	d1b, err := e1b.AsDense() // cache-served when CSE is on
	if err != nil {
		t.Fatal(err)
	}
	add(d1b.Data...)
	return fp
}

// checkEquivalence runs the seeded program twice under every grid
// configuration and asserts all fingerprints are bit-identical, that CSE-on
// sessions actually unified and cache-served work, and that CSE-off sessions
// did neither.
func checkEquivalence(t testing.TB, seed int64, em bool) {
	rng := rand.New(rand.NewSource(seed))
	n := int64(300 + rng.Intn(2200))
	p := 1 + rng.Intn(4)
	dataSeed := rng.Int63()
	progSeed := rng.Int63()

	var refName string
	var ref []uint64
	for _, cfg := range equivGrid(em) {
		opts := Options{
			Workers: 4, PartRows: 256, Fuse: cfg.fuse,
			DisableCSE: cfg.disableCSE, SyncWrites: cfg.syncWrites,
		}
		if cfg.em {
			dir := t.(interface{ TempDir() string }).TempDir()
			opts.EM = true
			opts.SSDDirs = []string{filepath.Join(dir, "d0"), filepath.Join(dir, "d1")}
		}
		s, err := NewSession(opts)
		if err != nil {
			t.Fatal(err)
		}
		x, err := s.GenerateSeeded(n, p, dataSeed, func(rng *rand.Rand, row []float64) {
			for i := range row {
				row[i] = rng.Float64()*4 - 2
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		fp1 := runEquivProgram(t, x, progSeed)
		fp2 := runEquivProgram(t, x, progSeed)
		for i := range fp1 {
			if fp1[i] != fp2[i] {
				t.Fatalf("seed %d [%s]: run 2 diverged from run 1 at word %d: %016x vs %016x",
					seed, cfg.name, i, fp2[i], fp1[i])
			}
		}
		ms := s.TotalMaterializeStats()
		if cfg.disableCSE {
			if ms.CSEUnifications != 0 || ms.CacheHits != 0 {
				t.Fatalf("seed %d [%s]: CSE disabled but cse=%d hits=%d",
					seed, cfg.name, ms.CSEUnifications, ms.CacheHits)
			}
		} else {
			// The duplicate sink unifies in run 1; run 2 rebuilds cached
			// structures, so hits are guaranteed.
			if ms.CSEUnifications == 0 {
				t.Fatalf("seed %d [%s]: no CSE unifications for a program with a duplicate sink", seed, cfg.name)
			}
			if ms.CacheHits == 0 {
				t.Fatalf("seed %d [%s]: no cache hits across two identical runs", seed, cfg.name)
			}
		}
		if ref == nil {
			refName, ref = cfg.name, fp1
		} else {
			if len(fp1) != len(ref) {
				t.Fatalf("seed %d [%s]: fingerprint length %d != %d (%s)",
					seed, cfg.name, len(fp1), len(ref), refName)
			}
			for i := range ref {
				if fp1[i] != ref[i] {
					t.Fatalf("seed %d [%s]: word %d = %016x, want %016x (%s)",
						seed, cfg.name, i, fp1[i], ref[i], refName)
				}
			}
		}
		s.Close()
	}
}

// TestDAGEquivalenceGrid is the deterministic slice of the harness (several
// seeds, EM configurations included).
func TestDAGEquivalenceGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full equivalence grid is slow under -short with -race")
	}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			checkEquivalence(t, seed, true)
		})
	}
}

// TestDAGEquivalenceGridShort keeps one in-memory seed in the -short / -race
// tier so the equivalence property is exercised on every CI run.
func TestDAGEquivalenceGridShort(t *testing.T) {
	checkEquivalence(t, 99, false)
}

// FuzzDAGEquivalence feeds arbitrary seeds through the harness (in-memory
// grid only; EM runs in the deterministic test above).
func FuzzDAGEquivalence(f *testing.F) {
	for _, s := range []int64{0, 1, 42, 1<<40 + 7, -3} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkEquivalence(t, seed, false)
	})
}
