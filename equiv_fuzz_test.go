package flashr

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// Differential equivalence harness for the hash-consed engine: a seeded
// random program is executed under every combination of
// {FuseNone, FuseMem, FuseCache} × {CSE on, off} × {SyncWrites on, off}, and
// every configuration must produce bit-identical results. Each session runs
// the program twice over the same leaf, so the second run exercises the
// cross-materialize result cache on exactly the values the first run
// computed.
//
// Sink aggregations fold worker-local partials whose partition composition
// depends on scheduling, so float sums are only bit-stable when the summands
// are integers (integer addition in float64 is exact and grouping-
// insensitive below 2^53). The program therefore fingerprints sums through
// Round, and keeps raw floats for the order-insensitive min/max sinks and
// for tall outputs (elementwise, deterministic by construction). The value
// ranges below keep every rounded sum far under 2^53.

// equivConfig is one point of the equivalence grid.
type equivConfig struct {
	name       string
	fuse       FuseLevel
	disableCSE bool
	syncWrites bool
	em         bool
	// Rewrite ablations: the whole pass off, or one rule family off. Every
	// point must still fingerprint bit-identically (tolerance-pinned for the
	// float-fold channel), which is the equivalence gate for the optimizer.
	noRewrites bool
	noView     bool
	noXProd    bool
	noFold     bool
	noDCE      bool
	// shards > 0 runs the session with in-process sharded execution: the
	// distributed path must fingerprint bit-identically to local execution
	// (carry-seeded cumulative folds included), with only the float
	// aggregation fold in the tolerance channel.
	shards int
	// Crash schedule: kill -9 + restart worker crashWorker before/after the
	// Nth exec it receives (1-based). The coordinator must fence, replay
	// lineage, and still fingerprint bit-identically — the recovery path is
	// held to the same equivalence gate as the happy path.
	crashWorker int
	crashBefore []int64
	crashAfter  []int64
}

func (c equivConfig) hasCrash() bool {
	return len(c.crashBefore)+len(c.crashAfter) > 0
}

func equivGrid(em bool) []equivConfig {
	var grid []equivConfig
	for _, fuse := range []FuseLevel{FuseCache, FuseMem, FuseNone} {
		for _, cse := range []bool{false, true} {
			for _, sync := range []bool{false, true} {
				grid = append(grid, equivConfig{
					name:       fmt.Sprintf("fuse=%v/cse=%t/sync=%t", fuse, !cse, sync),
					fuse:       fuse,
					disableCSE: cse,
					syncWrites: sync,
				})
			}
		}
		grid = append(grid, equivConfig{
			name: fmt.Sprintf("fuse=%v/rewrites=off", fuse), fuse: fuse, noRewrites: true,
		})
	}
	// Per-rule ablations on the default fuse level: each remaining rule must
	// hold equivalence on its own.
	grid = append(grid,
		equivConfig{name: "cache/no-view", fuse: FuseCache, noView: true},
		equivConfig{name: "cache/no-xprod", fuse: FuseCache, noXProd: true},
		equivConfig{name: "cache/no-fold", fuse: FuseCache, noFold: true},
		equivConfig{name: "cache/no-dce", fuse: FuseCache, noDCE: true},
	)
	// Sharded execution axis: the same program row-partitioned across 2 and 4
	// in-process workers, plus sharding with CSE ablated and under per-op
	// (FuseNone) materialization.
	grid = append(grid, shardGrid()[1:]...)
	if em {
		grid = append(grid,
			equivConfig{name: "em/cache/cse-on", fuse: FuseCache, em: true},
			equivConfig{name: "em/cache/cse-off/sync", fuse: FuseCache, disableCSE: true, syncWrites: true, em: true},
			equivConfig{name: "em/cache/rewrites-off", fuse: FuseCache, noRewrites: true, em: true},
		)
	}
	return grid
}

// shardGrid is the trimmed grid of the sharded-equivalence fuzz target: a
// local baseline plus the distributed configurations. Entry 0 is the
// baseline; the rest also ride along in the full equivGrid.
func shardGrid() []equivConfig {
	return []equivConfig{
		{name: "local/cache", fuse: FuseCache},
		{name: "shard=2/cache", fuse: FuseCache, shards: 2},
		{name: "shard=4/cache", fuse: FuseCache, shards: 4},
		{name: "shard=2/cse-off", fuse: FuseCache, disableCSE: true, shards: 2},
		{name: "shard=2/fuse=none", fuse: FuseNone, shards: 2},
		// Crash-schedule axis: a seeded worker kill/restart at exec
		// boundaries must not perturb a single bit of the fingerprint.
		// Crashing workers are limited to 0 and 1 — with the minimum program
		// size (n ≥ 300, part-rows 256) only the first two workers are
		// guaranteed rows, and a schedule that never fires is asserted fatal.
		{name: "shard=2/crash-w1-before-exec1", fuse: FuseCache, shards: 2,
			crashWorker: 1, crashBefore: []int64{1}},
		{name: "shard=2/crash-w0-after-exec1", fuse: FuseCache, shards: 2,
			crashWorker: 0, crashAfter: []int64{1}},
		{name: "shard=4/crash-w1-before-exec2", fuse: FuseCache, shards: 4,
			crashWorker: 1, crashBefore: []int64{2}},
	}
}

// buildEquivExpr builds a deterministic random elementwise expression over x.
// Ops are chosen to keep magnitudes bounded (no exp/log/div) so rounded sums
// stay exactly representable.
func buildEquivExpr(rng *rand.Rand, x *FM, depth int) *FM {
	if depth <= 0 {
		return x
	}
	switch rng.Intn(13) {
	case 0:
		return Abs(buildEquivExpr(rng, x, depth-1))
	case 1:
		return Neg(buildEquivExpr(rng, x, depth-1))
	case 2:
		return Sign(buildEquivExpr(rng, x, depth-1))
	case 3:
		return Sqrt(Abs(buildEquivExpr(rng, x, depth-1)))
	case 4:
		return Sigmoid(buildEquivExpr(rng, x, depth-1))
	case 5:
		return Round(buildEquivExpr(rng, x, depth-1))
	case 6:
		a := buildEquivExpr(rng, x, depth-1)
		b := buildEquivExpr(rng, x, depth-1)
		return Add(a, b)
	case 7:
		a := buildEquivExpr(rng, x, depth-1)
		b := buildEquivExpr(rng, x, depth-1)
		return Sub(a, b)
	case 8:
		a := buildEquivExpr(rng, x, depth-1)
		b := buildEquivExpr(rng, x, depth-1)
		return Mul(a, b)
	case 9:
		a := buildEquivExpr(rng, x, depth-1)
		b := buildEquivExpr(rng, x, depth-1)
		return Pmin(a, b)
	case 10:
		a := buildEquivExpr(rng, x, depth-1)
		b := buildEquivExpr(rng, x, depth-1)
		return Pmax(a, b)
	case 11:
		return Mul(buildEquivExpr(rng, x, depth-1), float64(rng.Intn(9))-4)
	default:
		return Cumsum(buildEquivExpr(rng, x, depth-1))
	}
}

// runEquivProgram executes the seeded program once over the shared leaf x and
// returns its result fingerprint as float64 bit patterns, plus a separate
// tolerance-pinned channel for values that pass through the float
// aggregation fold (folding reassociates the reduction, so those values are
// equivalent across configurations only to within rounding). Expressions are
// rebuilt from scratch each run — structurally identical, new node objects —
// which is exactly what iterative algorithms do per iteration.
func runEquivProgram(t testing.TB, x *FM, progSeed int64) ([]uint64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(progSeed))
	e1 := buildEquivExpr(rng, x, 3)
	e2 := buildEquivExpr(rng, x, 3)
	// An identical twin of e1 from a fresh RNG with the same seed: the
	// engine must CSE it, a CSE-free engine must recompute it — either way
	// the bits must agree.
	e1b := buildEquivExpr(rand.New(rand.NewSource(progSeed)), x, 3)

	z, zb := Sum(Round(e1)), Sum(Round(e1b))
	mx, mn := Max(e2), Min(e2)
	cs := ColSums(Round(e2))
	// Integer-exact aggregation fold: sum(3·round(e1)) folds to 3·sum(round(e1)),
	// sharing the raw reduction's cache key with z — exact for integer sums,
	// so it lives in the bit-identical fingerprint.
	z3 := Sum(Mul(Round(e1), 3.0))
	// Dead-input elimination + view push-down: selecting only the left half
	// of a cbind disconnects the right input, then the identity selection
	// over round(e1) collapses away.
	_, p := x.Dim()
	left := make([]int, p)
	for i := range left {
		left[i] = i
	}
	dce := ColSums(GetCols(Cbind(Round(e1), Round(e2)), left))
	// View push-down independent of DCE: a single-column selection above a
	// scalar multiply pushes below it (and below Round), narrowing the chain.
	pd := ColSums(GetCols(Mul(Round(e2), 2.0), []int{0}))
	// Crossprod self-recognition: structurally identical but distinct
	// operands select the symmetric kernel. Sign keeps entries in {-1,0,1}
	// so the p×p accumulations are exact whatever the partition order.
	xp := CrossProd2(Sign(e1), Sign(e1b))
	// Float fold (tolerance channel): sum(0.3·e2) folds to 0.3·sum(e2),
	// which reassociates a real-valued reduction.
	ff := Sum(Mul(e2, 0.3))

	var fp []uint64
	add := func(vs ...float64) {
		for _, v := range vs {
			fp = append(fp, math.Float64bits(v))
		}
	}
	vz, err := z.Float() // one fused pass materializes every pending sink
	if err != nil {
		t.Fatal(err)
	}
	vzb, err := zb.Float()
	if err != nil {
		t.Fatal(err)
	}
	vmx, err := mx.Float()
	if err != nil {
		t.Fatal(err)
	}
	vmn, err := mn.Float()
	if err != nil {
		t.Fatal(err)
	}
	vz3, err := z3.Float()
	if err != nil {
		t.Fatal(err)
	}
	add(vz, vzb, vmx, vmn, vz3)
	csv, err := cs.AsVector()
	if err != nil {
		t.Fatal(err)
	}
	add(csv...)
	dcv, err := dce.AsVector()
	if err != nil {
		t.Fatal(err)
	}
	add(dcv...)
	pdv, err := pd.AsVector()
	if err != nil {
		t.Fatal(err)
	}
	add(pdv...)
	xpd, err := xp.AsDense()
	if err != nil {
		t.Fatal(err)
	}
	add(xpd.Data...)
	d1, err := e1.AsDense()
	if err != nil {
		t.Fatal(err)
	}
	add(d1.Data...)
	d1b, err := e1b.AsDense() // cache-served when CSE is on
	if err != nil {
		t.Fatal(err)
	}
	add(d1b.Data...)
	vff, err := ff.Float()
	if err != nil {
		t.Fatal(err)
	}
	return fp, []float64{vff}
}

// checkEquivalence runs the seeded program twice under every grid
// configuration and asserts all fingerprints are bit-identical, that CSE-on
// sessions actually unified and cache-served work, and that CSE-off sessions
// did neither.
func checkEquivalence(t testing.TB, seed int64, em bool) {
	checkEquivalenceGrid(t, seed, equivGrid(em))
}

func checkEquivalenceGrid(t testing.TB, seed int64, grid []equivConfig) {
	rng := rand.New(rand.NewSource(seed))
	n := int64(300 + rng.Intn(2200))
	p := 1 + rng.Intn(4)
	dataSeed := rng.Int63()
	progSeed := rng.Int63()

	var refName string
	var ref []uint64
	var refTol []float64
	for _, cfg := range grid {
		opts := Options{
			Workers: 4, PartRows: 256, Fuse: cfg.fuse,
			DisableCSE: cfg.disableCSE, SyncWrites: cfg.syncWrites,
			DisableRewrites:         cfg.noRewrites,
			DisableRewriteView:      cfg.noView,
			DisableRewriteCrossProd: cfg.noXProd,
			DisableRewriteAggFold:   cfg.noFold,
			DisableRewriteDCE:       cfg.noDCE,
		}
		var chaos []*shard.ChaosTransport
		if cfg.shards > 0 {
			sc := ShardConfig{Shards: cfg.shards}
			if cfg.hasCrash() {
				sc.Retries = 8
				sc.RetryBackoff = time.Millisecond
				sc.WrapTransport = func(wi int, tr shard.Transport) shard.Transport {
					if wi != cfg.crashWorker {
						return tr
					}
					ct, err := shard.NewChaosTransport(tr, shard.ChaosConfig{
						Worker:          core.Config{Workers: opts.Workers, PartRows: opts.PartRows},
						CrashBeforeExec: cfg.crashBefore,
						CrashAfterExec:  cfg.crashAfter,
					})
					if err != nil {
						t.Fatal(err)
					}
					chaos = append(chaos, ct)
					return ct
				}
			}
			opts.Sharding = &sc
		}
		if cfg.em {
			dir := t.(interface{ TempDir() string }).TempDir()
			opts.EM = true
			opts.SSDDirs = []string{filepath.Join(dir, "d0"), filepath.Join(dir, "d1")}
		}
		s, err := NewSession(opts)
		if err != nil {
			t.Fatal(err)
		}
		x, err := s.GenerateSeeded(n, p, dataSeed, func(rng *rand.Rand, row []float64) {
			for i := range row {
				row[i] = rng.Float64()*4 - 2
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		fp1, tol1 := runEquivProgram(t, x, progSeed)
		fp2, tol2 := runEquivProgram(t, x, progSeed)
		for i := range fp1 {
			if fp1[i] != fp2[i] {
				t.Fatalf("seed %d [%s]: run 2 diverged from run 1 at word %d: %016x vs %016x",
					seed, cfg.name, i, fp2[i], fp1[i])
			}
		}
		for i := range tol1 {
			// Within one configuration the fold is applied (or not) both
			// runs, so even the float channel repeats exactly.
			if math.Float64bits(tol1[i]) != math.Float64bits(tol2[i]) {
				t.Fatalf("seed %d [%s]: run 2 float channel %d = %v, run 1 = %v",
					seed, cfg.name, i, tol2[i], tol1[i])
			}
		}
		ms := s.TotalMaterializeStats()
		if cfg.disableCSE {
			if ms.CSEUnifications != 0 || ms.CacheHits != 0 {
				t.Fatalf("seed %d [%s]: CSE disabled but cse=%d hits=%d",
					seed, cfg.name, ms.CSEUnifications, ms.CacheHits)
			}
			// No signature context means no rewriting either.
			if ms.Rewrites != 0 {
				t.Fatalf("seed %d [%s]: CSE disabled but %d rewrites applied", seed, cfg.name, ms.Rewrites)
			}
		} else {
			// The duplicate sink unifies in run 1; run 2 rebuilds cached
			// structures, so hits are guaranteed.
			if ms.CSEUnifications == 0 {
				t.Fatalf("seed %d [%s]: no CSE unifications for a program with a duplicate sink", seed, cfg.name)
			}
			if ms.CacheHits == 0 {
				t.Fatalf("seed %d [%s]: no cache hits across two identical runs", seed, cfg.name)
			}
		}
		// The program deterministically exercises every rewrite family, so
		// the counters double as ablation proof: a disabled family applies
		// nothing, an enabled one (with CSE on) applies at least once.
		checkCounter := func(what string, disabled bool, n int64) {
			switch {
			case (cfg.disableCSE || cfg.noRewrites || disabled) && n != 0:
				t.Fatalf("seed %d [%s]: %s disabled but applied %d times", seed, cfg.name, what, n)
			case !cfg.disableCSE && !cfg.noRewrites && !disabled && n == 0:
				t.Fatalf("seed %d [%s]: %s enabled but never applied", seed, cfg.name, what)
			}
		}
		checkCounter("view rewrite", cfg.noView, ms.RewriteViews)
		checkCounter("crossprod rewrite", cfg.noXProd, ms.RewriteCrossProds)
		checkCounter("aggregation fold", cfg.noFold, ms.RewriteAggFolds)
		checkCounter("dead-input elimination", cfg.noDCE, ms.RewriteDCE)
		// Sharded sessions must actually execute remotely (and local ones must
		// not): ShardPasses is nonzero exactly when sharding is configured.
		if cfg.shards > 0 && ms.ShardPasses == 0 {
			t.Fatalf("seed %d [%s]: sharding configured but no worker passes ran", seed, cfg.name)
		}
		if cfg.shards == 0 && ms.ShardPasses != 0 {
			t.Fatalf("seed %d [%s]: local session recorded %d shard passes", seed, cfg.name, ms.ShardPasses)
		}
		// A crash schedule that never fires tests nothing: every chaos
		// transport must have crashed at least once, and the coordinator must
		// have recovered (fenced, re-helloed, replayed) at least as often.
		if cfg.hasCrash() {
			if len(chaos) == 0 {
				t.Fatalf("seed %d [%s]: crash schedule configured but no chaos transport installed", seed, cfg.name)
			}
			var crashes int64
			for _, ct := range chaos {
				crashes += ct.Crashes()
			}
			if crashes == 0 {
				t.Fatalf("seed %d [%s]: crash schedule never fired", seed, cfg.name)
			}
			if rec := s.Coordinator().Recoveries(); rec < crashes {
				t.Fatalf("seed %d [%s]: %d crashes but only %d recoveries", seed, cfg.name, crashes, rec)
			}
		}
		if ref == nil {
			refName, ref, refTol = cfg.name, fp1, tol1
		} else {
			if len(fp1) != len(ref) {
				t.Fatalf("seed %d [%s]: fingerprint length %d != %d (%s)",
					seed, cfg.name, len(fp1), len(ref), refName)
			}
			for i := range ref {
				if fp1[i] != ref[i] {
					t.Fatalf("seed %d [%s]: word %d = %016x, want %016x (%s)",
						seed, cfg.name, i, fp1[i], ref[i], refName)
				}
			}
			for i := range refTol {
				if d := math.Abs(tol1[i] - refTol[i]); d > 1e-6+1e-9*math.Abs(refTol[i]) {
					t.Fatalf("seed %d [%s]: float channel %d = %v, want %v±tol (%s)",
						seed, cfg.name, i, tol1[i], refTol[i], refName)
				}
			}
		}
		s.Close()
	}
}

// TestDAGEquivalenceGrid is the deterministic slice of the harness (several
// seeds, EM configurations included).
func TestDAGEquivalenceGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full equivalence grid is slow under -short with -race")
	}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			checkEquivalence(t, seed, true)
		})
	}
}

// TestDAGEquivalenceGridShort keeps one in-memory seed in the -short / -race
// tier so the equivalence property is exercised on every CI run.
func TestDAGEquivalenceGridShort(t *testing.T) {
	checkEquivalence(t, 99, false)
}

// FuzzDAGEquivalence feeds arbitrary seeds through the harness (in-memory
// grid only; EM runs in the deterministic test above).
func FuzzDAGEquivalence(f *testing.F) {
	for _, s := range []int64{0, 1, 42, 1<<40 + 7, -3} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkEquivalence(t, seed, false)
	})
}

// TestShardEquivalenceGrid is the deterministic slice of the sharded axis:
// seeded programs through the trimmed local-vs-sharded grid.
func TestShardEquivalenceGrid(t *testing.T) {
	for seed := int64(11); seed <= 13; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			checkEquivalenceGrid(t, seed, shardGrid())
		})
	}
}

// FuzzShardEquivalence feeds arbitrary seeds through the trimmed sharded
// grid: single-engine vs 2- and 4-shard in-process execution must be
// bit-identical for tall results and integer folds, tolerance-pinned for the
// float aggregation fold.
func FuzzShardEquivalence(f *testing.F) {
	for _, s := range []int64{0, 7, 42, 1<<33 + 5, -11} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkEquivalenceGrid(t, seed, shardGrid())
	})
}

// TestShardUnifiedCumsum pins the CSE×sharding interaction: when one
// expression references the same cumulative subexpression twice, the plan
// unifies the two cum.col nodes onto one slot and only the representative
// publishes carries. The encoded program must collapse the duplicate the
// same way — encoding it as a second node would leave it unseeded on every
// shard but the first (it would restart from the fold identity instead of
// the threaded carry). Found by the equivalence fuzzer at grid seed 2.
func TestShardUnifiedCumsum(t *testing.T) {
	run := func(shards int, build func(x *FM) []*FM) [][]float64 {
		opts := Options{Workers: 4, PartRows: 256}
		if shards > 0 {
			opts.Sharding = &ShardConfig{Shards: shards}
		}
		s, err := NewSession(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		x, err := s.GenerateSeeded(1000, 3, 99, func(rng *rand.Rand, row []float64) {
			for i := range row {
				row[i] = rng.Float64()*4 - 2
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var out [][]float64
		for _, e := range build(x) {
			d, err := e.AsDense()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, d.Data)
		}
		return out
	}
	for _, tc := range []struct {
		name  string
		build func(x *FM) []*FM
	}{
		{"two-consumer-cum", func(x *FM) []*FM {
			// Cumsum(x) twice in one expression: unified onto one node with
			// two consumers.
			return []*FM{Sum(Round(Add(Cumsum(x), Abs(Cumsum(x)))))}
		}},
		{"seed2-shape", func(x *FM) []*FM {
			e := Sub(Mul(Sigmoid(x), Cumsum(x)), Sqrt(Abs(Cumsum(x))))
			return []*FM{Sum(Round(e))}
		}},
		{"twin-dense-talls", func(x *FM) []*FM {
			// Structurally identical dense targets: with sharding they unify
			// onto one program index but must keep independent handles.
			e := Mul(Cumsum(x), Neg(Abs(x)))
			eb := Mul(Cumsum(x), Neg(Abs(x)))
			return []*FM{e, eb, Sum(Round(e))}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := run(0, tc.build)
			got := run(2, tc.build)
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("result %d: %d values, want %d", i, len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
						t.Fatalf("result %d value %d: shard %v, local %v", i, j, got[i][j], want[i][j])
					}
				}
			}
		})
	}
}
