package flashr

import (
	"path/filepath"
	"testing"
)

func emSessionAt(t *testing.T, dirs []string) *Session {
	t.Helper()
	s, err := NewSession(Options{Workers: 2, PartRows: 256, EM: true, SSDDirs: dirs})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveOpenNamedRoundTrip(t *testing.T) {
	root := t.TempDir()
	dirs := []string{filepath.Join(root, "d0"), filepath.Join(root, "d1")}
	s := emSessionAt(t, dirs)
	x, err := s.Rnorm(2000, 5, 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the persisted elements bit-exactly; a Sum checksum would be
	// sensitive to which worker aggregated which partition.
	want, err := x.AsDense()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveNamed(x, "mymatrix"); err != nil {
		t.Fatal(err)
	}
	names := s.ListNamed()
	if len(names) != 1 || names[0] != "mymatrix" {
		t.Fatalf("named list %v", names)
	}
	// Reopen from a completely fresh session over the same drives.
	s.Close()
	s2 := emSessionAt(t, dirs)
	defer s2.Close()
	y, err := s2.OpenNamed("mymatrix")
	if err != nil {
		t.Fatal(err)
	}
	if r, c := y.Dim(); r != 2000 || c != 5 {
		t.Fatalf("reopened dims %dx%d", r, c)
	}
	got, err := y.AsDense()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d: %g != %g after reopen", i, got.Data[i], want.Data[i])
		}
	}
}

func TestSaveNamedWideUsesBlocks(t *testing.T) {
	root := t.TempDir()
	dirs := []string{filepath.Join(root, "d0"), filepath.Join(root, "d1")}
	s := emSessionAt(t, dirs)
	defer s.Close()
	x, err := s.Rnorm(600, 40, 0, 1, 4) // > 32 cols → 2 blocks
	if err != nil {
		t.Fatal(err)
	}
	want := Sum(Abs(x)).MustFloat()
	if err := s.SaveNamed(x, "wide"); err != nil {
		t.Fatal(err)
	}
	// Block files exist in the namespace.
	var sawBlock bool
	for _, f := range s.FS().List() {
		if f == "wide.b01" {
			sawBlock = true
		}
	}
	if !sawBlock {
		t.Fatal("wide matrix not stored as 32-column blocks")
	}
	y, err := s.OpenNamed("wide")
	if err != nil {
		t.Fatal(err)
	}
	if got := Sum(Abs(y)).MustFloat(); got != want {
		t.Fatalf("blocked round trip %g != %g", got, want)
	}
}

func TestSaveNamedVirtualMaterializesFirst(t *testing.T) {
	root := t.TempDir()
	s := emSessionAt(t, []string{filepath.Join(root, "d0")})
	defer s.Close()
	x, err := s.Rnorm(1000, 2, 0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	virt := Sqrt(Abs(x)) // still lazy
	if !virt.IsVirtual() {
		t.Fatal("expected virtual input")
	}
	if err := s.SaveNamed(virt, "derived"); err != nil {
		t.Fatal(err)
	}
	y, err := s.OpenNamed("derived")
	if err != nil {
		t.Fatal(err)
	}
	diff := Max(Abs(Sub(y, virt))).MustFloat()
	if diff != 0 {
		t.Fatalf("derived matrix differs by %g", diff)
	}
}

func TestOpenNamedErrors(t *testing.T) {
	root := t.TempDir()
	s := emSessionAt(t, []string{filepath.Join(root, "d0")})
	defer s.Close()
	if _, err := s.OpenNamed("missing"); err == nil {
		t.Fatal("opened nonexistent matrix")
	}
	mem := NewMemSession()
	if err := mem.SaveNamed(mem.Ones(10, 1), "x"); err == nil {
		t.Fatal("SaveNamed on a memory session succeeded")
	}
	if _, err := mem.OpenNamed("x"); err == nil {
		t.Fatal("OpenNamed on a memory session succeeded")
	}
}
